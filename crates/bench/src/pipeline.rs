//! Timed end-to-end pipeline runs — the measurements behind Table II.
//!
//! Table II reports, per dataset and scalar field:
//!
//! * `Nt` — number of nodes of the final super (edge) scalar tree;
//! * `tc` — time to construct the tree (Algorithm 1 or 3, plus Algorithm 2);
//! * `te` — time of the naive dual-graph edge-tree construction (edge scalars
//!   only);
//! * `tv` — time to turn the tree into the rendered terrain (here: 2D layout +
//!   3D mesh + SVG serialization).
//!
//! The helpers delegate every stage to the façade's staged
//! [`TerrainPipeline`] session — the `tc` and `tv` columns are read straight
//! from its [`graph_terrain::StageTimings`] — and only add what is
//! bench-specific: the dataset-level report structs, the `te` dual-graph
//! baseline, and the [`PipelineConfig`] knobs of the harness binaries. All
//! helpers propagate errors as [`TerrainResult`] instead of panicking.

use graph_terrain::{Measure, SimplificationConfig, TerrainPipeline};
use scalarfield::{build_super_tree, edge_scalar_tree_naive, EdgeScalarGraph};
use std::time::Instant;
use terrain::TerrainResult;
use ugraph::par::Parallelism;
use ugraph::GraphStorage;

/// Knobs of a timed pipeline run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Thread budget for the measure stage (timings change, numbers don't).
    pub parallelism: Parallelism,
    /// Maximum number of super-tree nodes rendered without simplification;
    /// larger trees are simplified first, exactly as Section II-E prescribes.
    pub render_node_budget: usize,
    /// Discretization levels used when the budget triggers simplification.
    pub simplify_levels: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            parallelism: Parallelism::Serial,
            render_node_budget: 4_000,
            simplify_levels: 64,
        }
    }
}

impl PipelineConfig {
    fn simplification(&self) -> SimplificationConfig {
        SimplificationConfig {
            node_budget: Some(self.render_node_budget),
            levels: self.simplify_levels,
        }
    }
}

/// Report of a vertex-scalar (K-Core) pipeline run.
#[derive(Clone, Debug)]
pub struct VertexPipelineReport {
    /// Number of super tree nodes (`Nt`).
    pub super_tree_nodes: usize,
    /// Seconds to compute the scalar field (K-Core decomposition).
    pub scalar_seconds: f64,
    /// Seconds to build the scalar tree + super tree (`tc`).
    pub tree_seconds: f64,
    /// Seconds to lay out, mesh and serialize the terrain (`tv`).
    pub visualization_seconds: f64,
    /// Number of triangles in the rendered mesh.
    pub mesh_triangles: usize,
}

/// Report of an edge-scalar (K-Truss) pipeline run.
#[derive(Clone, Debug)]
pub struct EdgePipelineReport {
    /// Number of super tree nodes (`Nt`).
    pub super_tree_nodes: usize,
    /// Seconds to compute the scalar field (K-Truss decomposition).
    pub scalar_seconds: f64,
    /// Seconds for Algorithm 3 + Algorithm 2 (`tc`).
    pub tree_seconds: f64,
    /// Seconds for the naive dual-graph method + Algorithm 2 (`te`),
    /// `None` if it was skipped (too large).
    pub naive_tree_seconds: Option<f64>,
    /// Seconds to lay out, mesh and serialize the terrain (`tv`).
    pub visualization_seconds: f64,
}

/// Run the K-Core terrain pipeline on a graph, timing each stage.
/// Single-threaded; see [`run_vertex_pipeline_with`].
pub fn run_vertex_pipeline(graph: &dyn GraphStorage) -> TerrainResult<VertexPipelineReport> {
    run_vertex_pipeline_configured(graph, &PipelineConfig::default())
}

/// [`run_vertex_pipeline`] with a [`Parallelism`] budget and the default
/// render budget.
pub fn run_vertex_pipeline_with(
    graph: &dyn GraphStorage,
    parallelism: Parallelism,
) -> TerrainResult<VertexPipelineReport> {
    run_vertex_pipeline_configured(graph, &PipelineConfig { parallelism, ..Default::default() })
}

/// Run the K-Core terrain pipeline under explicit [`PipelineConfig`] knobs.
///
/// The K-Core bucket peeling, the union–find tree sweep and the layout are
/// inherently sequential, so the thread budget currently only matters on the
/// edge side (where the triangle-support stage parallelizes); reports are
/// identical for every setting.
pub fn run_vertex_pipeline_configured(
    graph: &dyn GraphStorage,
    config: &PipelineConfig,
) -> TerrainResult<VertexPipelineReport> {
    let mut session = TerrainPipeline::from_measure(graph, Measure::KCore);
    session.set_parallelism(config.parallelism).set_simplification(config.simplification());
    let super_tree_nodes = session.super_tree()?.node_count();
    session.svg()?;
    let mesh_triangles = session.mesh()?.triangle_count();
    let timings = session.timings();
    Ok(VertexPipelineReport {
        super_tree_nodes,
        scalar_seconds: timings.scalar_seconds.unwrap_or(0.0),
        tree_seconds: timings.tree_construction_seconds().unwrap_or(0.0),
        visualization_seconds: timings.visualization_seconds().unwrap_or(0.0),
        mesh_triangles,
    })
}

/// Run the K-Truss terrain pipeline on a graph, timing each stage.
/// Single-threaded; see [`run_edge_pipeline_with`].
///
/// `run_naive` controls whether the dual-graph baseline (`te`) is measured;
/// on graphs with high-degree vertices it can be orders of magnitude slower
/// than Algorithm 3, which is exactly the point of Table II.
pub fn run_edge_pipeline(
    graph: &dyn GraphStorage,
    run_naive: bool,
) -> TerrainResult<EdgePipelineReport> {
    run_edge_pipeline_configured(graph, run_naive, &PipelineConfig::default())
}

/// [`run_edge_pipeline`] with a [`Parallelism`] budget and the default
/// render budget.
pub fn run_edge_pipeline_with(
    graph: &dyn GraphStorage,
    run_naive: bool,
    parallelism: Parallelism,
) -> TerrainResult<EdgePipelineReport> {
    run_edge_pipeline_configured(
        graph,
        run_naive,
        &PipelineConfig { parallelism, ..Default::default() },
    )
}

/// Run the K-Truss terrain pipeline under explicit [`PipelineConfig`] knobs.
///
/// The thread budget accelerates the K-Truss scalar stage (its
/// triangle-support initialization is parallel over edges); the report's
/// numbers are identical for every setting, only wall-clock timings change.
pub fn run_edge_pipeline_configured(
    graph: &dyn GraphStorage,
    run_naive: bool,
    config: &PipelineConfig,
) -> TerrainResult<EdgePipelineReport> {
    let mut session = TerrainPipeline::from_measure(graph, Measure::KTruss);
    session.set_parallelism(config.parallelism).set_simplification(config.simplification());
    let super_tree_nodes = session.super_tree()?.node_count();
    session.svg()?;
    let timings = session.timings();

    let naive_tree_seconds = if run_naive {
        let scalar = session.scalar()?;
        let sg = EdgeScalarGraph::new(graph, scalar)?;
        let t = Instant::now();
        let naive = edge_scalar_tree_naive(&sg);
        let naive_super = build_super_tree(&naive);
        std::hint::black_box(naive_super.node_count());
        Some(t.elapsed().as_secs_f64())
    } else {
        None
    };

    Ok(EdgePipelineReport {
        super_tree_nodes,
        scalar_seconds: timings.scalar_seconds.unwrap_or(0.0),
        tree_seconds: timings.tree_construction_seconds().unwrap_or(0.0),
        naive_tree_seconds,
        visualization_seconds: timings.visualization_seconds().unwrap_or(0.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetKind;

    #[test]
    fn vertex_pipeline_produces_consistent_report() {
        let d = DatasetKind::GrQc.generate(0.15);
        let report = run_vertex_pipeline(&d.graph).unwrap();
        let budget = PipelineConfig::default().render_node_budget;
        assert!(report.super_tree_nodes > 1);
        assert!(report.super_tree_nodes <= d.graph.vertex_count());
        assert!(report.mesh_triangles >= 2 * report.super_tree_nodes.min(budget));
        assert!(report.tree_seconds >= 0.0 && report.visualization_seconds >= 0.0);
    }

    #[test]
    fn edge_pipeline_fast_beats_naive_on_skewed_graphs() {
        // WikiVote analog: preferential attachment with hubs, where the dual
        // graph explodes quadratically in hub degree.
        let d = DatasetKind::WikiVote.generate(0.08);
        let report = run_edge_pipeline(&d.graph, true).unwrap();
        assert!(report.super_tree_nodes >= 1);
        let naive = report.naive_tree_seconds.unwrap();
        assert!(
            naive >= report.tree_seconds,
            "naive ({naive:.4}s) should not beat Algorithm 3 ({:.4}s)",
            report.tree_seconds
        );
    }

    #[test]
    fn edge_pipeline_can_skip_naive() {
        let d = DatasetKind::Ppi.generate(0.1);
        let report = run_edge_pipeline(&d.graph, false).unwrap();
        assert!(report.naive_tree_seconds.is_none());
        assert!(report.super_tree_nodes >= 1);
    }

    #[test]
    fn reports_are_read_from_session_timings() {
        // The Table II fields must be exactly what the session API reports —
        // the delegation contract of the staged-pipeline redesign.
        let d = DatasetKind::GrQc.generate(0.1);
        let report = run_vertex_pipeline(&d.graph).unwrap();
        let mut session = TerrainPipeline::from_measure(&d.graph, Measure::KCore);
        session.set_simplification(PipelineConfig::default().simplification());
        session.svg().unwrap();
        let timings = session.timings();
        assert_eq!(report.super_tree_nodes, session.super_tree().unwrap().node_count());
        assert_eq!(report.mesh_triangles, session.mesh().unwrap().triangle_count());
        // Wall-clock differs between the two runs, but both must report the
        // same stage structure (every Table II component present).
        assert!(timings.tree_construction_seconds().is_some());
        assert!(timings.visualization_seconds().is_some());
        assert!(report.tree_seconds >= 0.0 && report.scalar_seconds >= 0.0);
    }

    #[test]
    fn render_budget_is_configurable() {
        let d = DatasetKind::GrQc.generate(0.15);
        // A budget of 1 forces simplification on any non-trivial tree, so the
        // rendered mesh is far smaller than the unsimplified one.
        let tiny = run_vertex_pipeline_configured(
            &d.graph,
            &PipelineConfig { render_node_budget: 1, simplify_levels: 2, ..Default::default() },
        )
        .unwrap();
        let full = run_vertex_pipeline(&d.graph).unwrap();
        assert_eq!(tiny.super_tree_nodes, full.super_tree_nodes, "Nt reports the full tree");
        assert!(tiny.mesh_triangles < full.mesh_triangles);
    }
}
