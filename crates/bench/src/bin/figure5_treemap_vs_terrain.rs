//! Figure 5 — 2D treemap vs 3D terrain on the GrQc analog.
//!
//! The figure's point: in the 2D treemap two nearly-equal dense cores get
//! colors from the same band and cannot be told apart, while the 3D terrain
//! separates them by height. The harness quantifies that: it finds the two
//! tallest disjoint peaks, reports their height difference (readable in 3D)
//! and their color-band difference (unreadable in 2D when below one band).

use bench::datasets::DatasetKind;
use bench::output::write_artifact;
use graph_terrain::{Measure, SimplificationConfig, SvgSize, TerrainPipeline};
use measures::core_numbers;
use terrain::{colormap, highest_peaks, Exporter, RenderScene, TreemapSvg};

fn main() {
    let dataset =
        DatasetKind::GrQc.generate(if std::env::args().any(|a| a == "--full") { 1.0 } else { 0.4 });
    let graph = &dataset.graph;
    let cores = core_numbers(graph);
    let mut session = TerrainPipeline::from_measure(graph, Measure::KCore);
    session
        .set_simplification(SimplificationConfig::disabled())
        .set_svg_size(SvgSize::new(900.0, 700.0));
    let stages = session.stages().expect("k-core terrain stages");
    let (tree, layout) = (stages.render_tree, stages.layout);
    let scene = RenderScene::new(tree, layout, stages.mesh);

    println!("Figure 5 — 2D treemap vs 3D terrain ({} analog)", dataset.spec.name);
    println!(
        "graph: {} nodes, {} edges; super tree: {} nodes; degeneracy {}",
        graph.vertex_count(),
        graph.edge_count(),
        tree.node_count(),
        cores.degeneracy
    );

    // The two tallest disjoint peaks ("peak 1" and "peak 2" of the figure).
    let peaks = highest_peaks(tree, layout, 16);
    if let Some(first) = peaks.first() {
        let first_set: std::collections::BTreeSet<u32> = first.members.iter().copied().collect();
        if let Some(second) =
            peaks.iter().skip(1).find(|p| p.members.iter().all(|m| !first_set.contains(m)))
        {
            let max = tree.scalars().iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let min = tree.scalars().iter().copied().fold(f64::INFINITY, f64::min);
            let normalize = |h: f64| (h - min) / (max - min).max(1e-9);
            let c1 = colormap(normalize(first.summit_height));
            let c2 = colormap(normalize(second.summit_height));
            println!(
                "peak 1: summit K = {:.0}, members = {}; peak 2: summit K = {:.0}, members = {}",
                first.summit_height, first.member_count, second.summit_height, second.member_count
            );
            println!(
                "3D reading: height difference = {:.0} core levels (visible as relief)",
                (first.summit_height - second.summit_height).abs()
            );
            println!(
                "2D reading: treemap colors {} vs {} — {}",
                c1.hex(),
                c2.hex(),
                if c1 == c2 {
                    "identical color band, peaks indistinguishable in the flat view"
                } else {
                    "different color bands"
                }
            );
        }
    }

    let svg2d = TreemapSvg::new(900.0, 700.0).export_string(&scene).expect("treemap render");
    let svg3d = session.build().expect("svg stage");
    if let Ok(p) = write_artifact("figure5_terrain3d.svg", &svg3d) {
        println!("wrote {}", p.display());
    }
    if let Ok(p) = write_artifact("figure5_treemap2d.svg", &svg2d) {
        println!("wrote {}", p.display());
    }
}
