//! Figures 1(b) and 8 — community terrains on the DBLP(sub) analog.
//!
//! Each of the four planted communities is visualized through its community
//! score field; the harness verifies the qualitative structure the paper
//! reads off the pictures: every community forms one major peak, major peaks
//! contain separate sub-peaks (the geographically separate sub-communities of
//! Figure 8), and the vertices at the top of a peak are the community's core
//! members.

use bench::datasets::DatasetKind;
use bench::output::{format_table, write_artifact};
use graph_terrain::{SimplificationConfig, SvgSize, TerrainPipeline};
use terrain::{highest_peaks, peaks_at_alpha, select_region};

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") { 1.0 } else { 0.5 };
    let dataset = DatasetKind::generate_dblp_communities(scale);
    let graph = &dataset.graph;
    println!(
        "Figure 8 — DBLP(sub) analog: {} nodes, {} edges, 4 planted communities",
        graph.vertex_count(),
        graph.edge_count()
    );

    let mut rows = Vec::new();
    for (community, scores) in dataset.scores.iter().enumerate() {
        let mut session =
            TerrainPipeline::vertex(graph, scores.clone()).expect("valid community score field");
        session
            .set_simplification(SimplificationConfig::disabled())
            .set_svg_size(SvgSize::new(900.0, 700.0));
        let stages = session.stages().expect("community terrain stages");
        let (tree, layout) = (stages.render_tree, stages.layout);

        // Major peaks at score 0.3: connected regions of anyone affiliated
        // with the community (the whole community shows as one mountain).
        // Sub-peaks at 0.6: the mid/core tiers, which split by sub-community.
        let major = peaks_at_alpha(tree, layout, 0.3);
        let sub = peaks_at_alpha(tree, layout, 0.6);

        // Purity of the largest major peak: how exclusively its members belong
        // to this community (the paper reads community membership off the
        // peak).
        let largest_major = major.iter().max_by_key(|p| p.member_count);
        let (purity, major_size) = match largest_major {
            None => (0.0, 0),
            Some(peak) => {
                let hits = peak
                    .members
                    .iter()
                    .filter(|&&v| dataset.primary[v as usize] == community)
                    .count();
                (hits as f64 / peak.member_count.max(1) as f64, peak.member_count)
            }
        };

        // Core members: the vertices of the tallest summit's subtree (the
        // "select the authors in the peak" interaction). The broader
        // rectangular region selection is also exercised, mirroring the
        // linked-2D-display callback.
        let top = highest_peaks(tree, layout, 1);
        let core_members: Vec<u32> = top.first().map(|p| p.members.clone()).unwrap_or_default();
        let _region =
            top.first().map(|p| select_region(tree, layout, &p.footprint)).unwrap_or_default();
        let core_mean_score = if core_members.is_empty() {
            0.0
        } else {
            core_members.iter().map(|&v| scores[v as usize]).sum::<f64>()
                / core_members.len() as f64
        };

        rows.push(vec![
            format!("community {community}"),
            major.len().to_string(),
            sub.len().to_string(),
            major_size.to_string(),
            format!("{purity:.2}"),
            format!("{core_mean_score:.2}"),
        ]);

        let _ = write_artifact(
            &format!("figure8_community{community}_terrain.svg"),
            &session.build().expect("svg stage"),
        );
    }

    let table = format_table(
        &[
            "community",
            "major peaks (α=0.3)",
            "sub-peaks (α=0.6)",
            "largest major peak size",
            "largest major peak purity",
            "mean score at summit",
        ],
        &rows,
    );
    println!("\n{table}");
    println!(
        "Expected shape: each community's own score terrain forms a small number of\n\
         major mountains whose upper parts split into ≥2 sub-peaks (the\n\
         sub-communities), the members of the largest major peak overwhelmingly\n\
         belong to that community (purity close to 1), and the vertices selected at\n\
         the summit have the highest community scores (the core members)."
    );
    let _ = write_artifact("figure8_summary.txt", &table);
}
