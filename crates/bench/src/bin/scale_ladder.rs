//! `scale_ladder` — run the full `TerrainPipeline` across a rung ladder of
//! generated graphs at several `Parallelism` settings and record a
//! `BENCH_<date>.json` perf baseline (schema and methodology: `PERFORMANCE.md`).
//!
//! ```text
//! scale_ladder [--rungs full|ci] [--parallelism serial,2,4x128]
//!              [--measure pagerank|degree|kcore] [--out NAME.json]
//!              [--compare PATH --tolerance 2.0]
//! ```
//!
//! * `--rungs` — `full` (1k → 10M edges, the recorded-baseline ladder) or
//!   `ci` (≤100k edges, the smoke-gate subset). Default `full`.
//! * `--parallelism` — comma-separated [`Parallelism::parse`] settings to run
//!   each rung at. Default `serial,2,4x128`.
//!
//! [`Parallelism::parse`]: ugraph::par::Parallelism::parse
//! * `--measure` — scalar field driving the pipeline. Default `pagerank`
//!   (parallel-capable and linear per iteration, so every ladder rung
//!   finishes; `degree` isolates the tree/render stages, `kcore` exercises
//!   the peeling path).
//! * `--out` — artifact name under the results directory. Default
//!   `BENCH_<date>.json`.
//! * `--compare` — a committed reference baseline to diff against; exits
//!   non-zero when any matched rung regresses by more than `--tolerance`
//!   (default 2.0) × the reference `total_seconds`.
//!
//! Every graph is generated once per rung and shared by all parallelism
//! settings, so the recorded `generate_seconds` is amortized exactly as the
//! pipeline timings are.
//!
//! After the pipeline measurements, each rung is additionally saved as a
//! binary v2 and a binary v3 snapshot in a temp directory and reopened both
//! ways — `storage: "snapshot-v2"` times the full v2 deserialize (CSR
//! rebuild + invariant check), `storage: "snapshot-v3-mapped"` times
//! [`ugraph::MappedCsrGraph::open`] (mmap + checksum + validation walk, no
//! array copies). The `open_seconds` gap between the two is the headline of
//! the zero-copy storage layer.
//!
//! Each rung also runs the delta bench: a fixed ≤1k-edge batch (half
//! deletes of existing edges, half fresh inserts) applied to a warm session
//! via [`TerrainPipeline::apply_delta`] and re-rendered (`storage:
//! "delta-apply"`, timing covers overlay + compaction + scalar splice +
//! downstream re-render), against the from-scratch path a client without
//! the delta subsystem pays: re-parse the final edge list (the same
//! re-upload CI's delta smoke performs), build the graph, and render a
//! fresh session (`storage: "delta-rebuild"`). Timings are best-of-3; a
//! byte-equality guard on the two SVGs backs every recorded pair. Both run
//! at `degree` (local incremental tier), `kcore` (dirty-region tier), and
//! `pagerank` (full-recompute fallback), so the recorded baseline
//! documents where incremental recomputation pays and where it degenerates
//! to a rebuild.
//!
//! Finally each rung runs the tile bench over the retained scene: `storage:
//! "tile-query"` records the *mean* quadtree viewport query over a fixed
//! diagonal sweep of tile viewports at zooms 0–4 (best-of-3 sweeps), and
//! `storage: "tile-render"` records one 256-pixel tile's SVG render
//! (best-of-3, guarded byte-identical across iterations). The scene build
//! itself lands in those rows' `generate_seconds`.

use bench::output::{results_dir, write_artifact};
use bench::report::{
    compare, git_short_rev, peak_rss_bytes, utc_date, validate, BenchReport, RungResult,
    StageSeconds, SCHEMA_VERSION,
};
use bench::{format_table_for, parallelism_list_from};
use graph_terrain::{Measure, TerrainPipeline};
use ugraph::delta::{DeltaOp, DeltaOverlay, GraphDelta};
use ugraph::generators::rmat;
use ugraph::io::{
    decode_binary_auto, encode_binary_v2, write_binary_v3_file, GraphFormat, GraphSource,
};
use ugraph::{CsrGraph, GraphStorage, MappedCsrGraph};

/// One ladder rung: name, RMAT scale, and the number of edge samples.
const FULL_LADDER: &[(&str, u32, usize)] = &[
    ("1k", 7, 1_000),
    ("10k", 10, 10_000),
    ("100k", 13, 100_000),
    ("1M", 17, 1_000_000),
    ("10M", 20, 10_000_000),
];

/// The ≤100k-edge subset the CI smoke gate runs.
const CI_LADDER: &[(&str, u32, usize)] =
    &[("1k", 7, 1_000), ("10k", 10, 10_000), ("100k", 13, 100_000)];

/// Seed shared by every baseline so runs are comparable across machines.
const LADDER_SEED: u64 = 20_170_419; // the paper's ICDE 2017 presentation date

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let prefix = format!("{flag}=");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(value) = arg.strip_prefix(&prefix) {
            return Some(value.to_string());
        }
        if arg == flag {
            return iter.next().cloned();
        }
    }
    None
}

/// The fixed ≤1k-edge batch the delta bench applies: half stride-sampled
/// deletes of existing edges, half fresh inserts from a deterministic
/// xorshift stream — the same batch for every measure and every run of a
/// given rung, so baselines stay comparable.
fn ladder_delta(graph: &CsrGraph) -> GraphDelta {
    const TARGET: usize = 1_000;
    let half = TARGET / 2;
    let mut delta = GraphDelta::new();
    let stride = (graph.edge_count() / half).max(1);
    for (i, e) in graph.edges().enumerate() {
        if i % stride == 0 && delta.len() < half {
            delta.push(DeltaOp::Delete, e.u, e.v);
        }
    }
    let n = graph.vertex_count() as u64;
    let mut state = LADDER_SEED | 1;
    let mut attempts = 0;
    while delta.len() < TARGET && attempts < TARGET * 10 {
        attempts += 1;
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let u = ((state >> 8) % n) as u32;
        let v = ((state >> 40) % n) as u32;
        delta.push(DeltaOp::Insert, u, v);
    }
    delta
}

fn measure_from(name: &str) -> Option<Measure> {
    match name {
        "pagerank" => Some(Measure::PageRank),
        "degree" => Some(Measure::Degree),
        "kcore" => Some(Measure::KCore),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();

    let ladder = match flag_value(&args, "--rungs").as_deref() {
        None | Some("full") => FULL_LADDER,
        Some("ci") => CI_LADDER,
        Some(other) => {
            eprintln!("[error] unknown --rungs value {other:?} (expected full or ci)");
            std::process::exit(2);
        }
    };
    let settings = parallelism_list_from(&args, "serial,2,4x128").unwrap_or_else(|bad| {
        eprintln!(
            "[error] unrecognized --parallelism entry {bad:?} (expected serial, auto, N or NxW)"
        );
        std::process::exit(2);
    });
    let measure_name = flag_value(&args, "--measure").unwrap_or_else(|| "pagerank".to_string());
    let Some(measure) = measure_from(&measure_name) else {
        eprintln!(
            "[error] unknown --measure {measure_name:?} (expected pagerank, degree or kcore)"
        );
        std::process::exit(2);
    };
    let out_name =
        flag_value(&args, "--out").unwrap_or_else(|| format!("BENCH_{}.json", utc_date()));
    let tolerance: f64 = match flag_value(&args, "--tolerance") {
        Some(t) => t.parse().unwrap_or_else(|_| {
            eprintln!("[error] --tolerance must be a number, got {t:?}");
            std::process::exit(2);
        }),
        None => 2.0,
    };

    let mut report = BenchReport {
        schema_version: SCHEMA_VERSION,
        created: utc_date(),
        git_rev: git_short_rev(),
        host_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        host_os: std::env::consts::OS.to_string(),
        rungs: Vec::new(),
    };
    println!(
        "scale ladder · measure {} · {} rungs × {} parallelism settings · git {}",
        measure_name,
        ladder.len(),
        settings.len(),
        report.git_rev
    );

    let snapshot_dir = std::env::temp_dir().join(format!("scale-ladder-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&snapshot_dir) {
        eprintln!("[error] cannot create snapshot dir {}: {e}", snapshot_dir.display());
        std::process::exit(1);
    }

    for &(rung_name, scale, target_edges) in ladder {
        let started = std::time::Instant::now();
        let graph = rmat(scale, target_edges, LADDER_SEED);
        let generate_seconds = started.elapsed().as_secs_f64();
        println!(
            "[{rung_name}] rmat scale {scale}: {} vertices, {} edges ({generate_seconds:.2}s)",
            graph.vertex_count(),
            graph.edge_count()
        );
        for &parallelism in &settings {
            let mut session = TerrainPipeline::from_measure(&graph, measure.clone());
            session.set_parallelism(parallelism);
            if let Err(e) = session.svg() {
                eprintln!("[error] {rung_name} @ {parallelism}: pipeline failed: {e}");
                std::process::exit(1);
            }
            let t = session.timings();
            let stages = StageSeconds {
                scalar: t.scalar_seconds.unwrap_or(0.0),
                tree: t.tree_seconds.unwrap_or(0.0),
                super_tree: t.super_tree_seconds.unwrap_or(0.0),
                simplify: t.simplify_seconds.unwrap_or(0.0),
                layout: t.layout_seconds.unwrap_or(0.0),
                mesh: t.mesh_seconds.unwrap_or(0.0),
                svg: t.svg_seconds.unwrap_or(0.0),
            };
            let total_seconds = stages.total();
            report.rungs.push(RungResult {
                rung: rung_name.to_string(),
                generator: "rmat".to_string(),
                scale,
                target_edges,
                vertices: graph.vertex_count(),
                edges: graph.edge_count(),
                generate_seconds,
                measure: measure_name.clone(),
                storage: "generated".to_string(),
                open_seconds: None,
                parallelism: parallelism.canonical_flag(),
                threads: parallelism.thread_count(),
                width: parallelism.width(),
                stages,
                total_seconds,
                edges_per_second: if total_seconds > 0.0 {
                    graph.edge_count() as f64 / total_seconds
                } else {
                    0.0
                },
                peak_rss_bytes: peak_rss_bytes(),
            });
            println!(
                "  {parallelism}: total {total_seconds:.3}s ({:.0} edges/s)",
                report.rungs.last().expect("just pushed").edges_per_second
            );
        }

        // Snapshot-open rungs: save the graph both ways, then time how long
        // it takes to get a queryable graph back from disk.
        let v2_path = snapshot_dir.join(format!("{rung_name}.v2.gtsb"));
        let v3_path = snapshot_dir.join(format!("{rung_name}.v3.gtsb"));
        let save_started = std::time::Instant::now();
        let v2_bytes = encode_binary_v2(&graph, None).expect("v2 encode");
        std::fs::write(&v2_path, &v2_bytes).expect("write v2 snapshot");
        drop(v2_bytes);
        let v2_save_seconds = save_started.elapsed().as_secs_f64();
        let save_started = std::time::Instant::now();
        write_binary_v3_file(&graph, None, &v3_path).expect("write v3 snapshot");
        let v3_save_seconds = save_started.elapsed().as_secs_f64();

        let open_started = std::time::Instant::now();
        let v2_graph = std::fs::read(&v2_path)
            .map_err(ugraph::GraphError::from)
            .and_then(|bytes| decode_binary_auto(&bytes))
            .expect("v2 snapshot reopens")
            .graph;
        let v2_open_seconds = open_started.elapsed().as_secs_f64();
        std::hint::black_box(v2_graph.edge_count());
        let v2_rss = peak_rss_bytes();
        drop(v2_graph);

        let open_started = std::time::Instant::now();
        let v3_graph = MappedCsrGraph::open(&v3_path).expect("v3 snapshot reopens");
        let v3_open_seconds = open_started.elapsed().as_secs_f64();
        std::hint::black_box(v3_graph.edge_count());
        let v3_rss = peak_rss_bytes();
        let v3_mapped = v3_graph.is_memory_mapped();
        drop(v3_graph);

        for (storage, open_seconds, save_seconds, rss) in [
            ("snapshot-v2", v2_open_seconds, v2_save_seconds, v2_rss),
            ("snapshot-v3-mapped", v3_open_seconds, v3_save_seconds, v3_rss),
        ] {
            report.rungs.push(RungResult {
                rung: rung_name.to_string(),
                generator: "rmat".to_string(),
                scale,
                target_edges,
                vertices: graph.vertex_count(),
                edges: graph.edge_count(),
                generate_seconds: save_seconds,
                measure: measure_name.clone(),
                storage: storage.to_string(),
                open_seconds: Some(open_seconds),
                parallelism: "serial".to_string(),
                threads: 1,
                width: 1,
                stages: StageSeconds::default(),
                total_seconds: open_seconds,
                edges_per_second: if open_seconds > 0.0 {
                    graph.edge_count() as f64 / open_seconds
                } else {
                    0.0
                },
                peak_rss_bytes: rss,
            });
        }
        let _ = std::fs::remove_file(&v2_path);
        let _ = std::fs::remove_file(&v3_path);
        println!(
            "  open: v2 {v2_open_seconds:.3}s vs v3-mapped {v3_open_seconds:.3}s ({:.1}x, mmap: {v3_mapped})",
            v2_open_seconds / v3_open_seconds.max(1e-9)
        );

        // Delta bench: apply the fixed ≤1k-edge batch to a warm session and
        // re-render, vs the from-scratch path — rebuild the final graph
        // from its edge list, then build and render a fresh session. One
        // pair of rows per incremental-cost tier.
        let delta = ladder_delta(&graph);
        let final_graph = {
            let mut overlay = DeltaOverlay::new(&graph);
            overlay.apply(&delta);
            overlay.compact().graph
        };
        // The final edge list serialized as text — what a rebuilding client
        // re-uploads (CI's delta smoke performs exactly this re-upload), so
        // the rebuild timing covers parse + build + render. The trailing
        // self loop pins the vertex count: the edge-list reader drops the
        // loop but keeps its endpoint, like the delta intake does.
        let rebuild_text = {
            use std::fmt::Write as _;
            let mut text = String::new();
            for e in final_graph.edges() {
                let _ = writeln!(text, "{} {}", e.u.0, e.v.0);
            }
            let last = final_graph.vertex_count().saturating_sub(1);
            let _ = writeln!(text, "{last} {last}");
            text
        };
        // Best-of-N timing: each iteration re-warms a session on the base
        // graph, so apply timings always start from a fully cached pipeline.
        // The minimum is the least-noise estimate on a shared container.
        const DELTA_ITERS: usize = 3;
        for delta_measure in [Measure::Degree, Measure::KCore, Measure::PageRank] {
            let tier = delta_measure.delta_cost().name();
            let delta_measure_name = delta_measure.name().to_string();
            let mut apply_seconds = f64::INFINITY;
            let mut rebuild_seconds = f64::INFINITY;
            for _ in 0..DELTA_ITERS {
                let mut warm = TerrainPipeline::from_measure(&graph, delta_measure.clone());
                if let Err(e) = warm.svg() {
                    eprintln!("[error] {rung_name} delta warm-up ({delta_measure_name}): {e}");
                    std::process::exit(1);
                }
                let apply_started = std::time::Instant::now();
                warm.apply_delta(&delta).expect("ladder delta applies");
                let warm_svg_ok = warm.svg().is_ok();
                apply_seconds = apply_seconds.min(apply_started.elapsed().as_secs_f64());

                // The owned copy is made outside the timer: a rebuilding
                // client already holds the upload bytes.
                let rebuild_input = rebuild_text.clone().into_bytes();
                let rebuild_started = std::time::Instant::now();
                let rebuilt = GraphSource::reader(std::io::Cursor::new(rebuild_input))
                    .with_format(GraphFormat::EdgeList)
                    .load()
                    .expect("ladder rebuild edge list parses")
                    .graph;
                let mut fresh = TerrainPipeline::from_measure(&rebuilt, delta_measure.clone());
                let fresh_svg_ok = fresh.svg().is_ok();
                rebuild_seconds = rebuild_seconds.min(rebuild_started.elapsed().as_secs_f64());
                if !warm_svg_ok || !fresh_svg_ok {
                    eprintln!(
                        "[error] {rung_name} delta bench render failed ({delta_measure_name})"
                    );
                    std::process::exit(1);
                }
                // The byte-exactness guard the timings ride on: incremental
                // and from-scratch renders must agree or the numbers mean
                // nothing.
                if warm.svg().expect("cached") != fresh.svg().expect("cached") {
                    eprintln!("[error] {rung_name} delta bench incoherent ({delta_measure_name})");
                    std::process::exit(1);
                }
            }
            for (storage, seconds) in
                [("delta-apply", apply_seconds), ("delta-rebuild", rebuild_seconds)]
            {
                report.rungs.push(RungResult {
                    rung: rung_name.to_string(),
                    generator: "rmat".to_string(),
                    scale,
                    target_edges,
                    vertices: final_graph.vertex_count(),
                    edges: final_graph.edge_count(),
                    generate_seconds,
                    measure: delta_measure_name.clone(),
                    storage: storage.to_string(),
                    open_seconds: None,
                    parallelism: "serial".to_string(),
                    threads: 1,
                    width: 1,
                    stages: StageSeconds::default(),
                    total_seconds: seconds,
                    edges_per_second: if seconds > 0.0 {
                        delta.len() as f64 / seconds
                    } else {
                        0.0
                    },
                    peak_rss_bytes: peak_rss_bytes(),
                });
            }
            println!(
                "  delta ({} edges, {delta_measure_name}/{tier}): apply {apply_seconds:.3}s vs rebuild {rebuild_seconds:.3}s ({:.1}x)",
                delta.len(),
                rebuild_seconds / apply_seconds.max(1e-9)
            );
        }

        // Tile bench: build the retained scene once (its cost lands in the
        // row's `generate_seconds`, like the snapshot rows record their
        // save), then time (a) quadtree viewport queries over a
        // deterministic pan/zoom sweep — `total_seconds` is the *mean*
        // query, the number the sub-millisecond claim rides on — and (b)
        // single-tile SVG renders, best-of-3 with a byte-equality guard
        // across iterations. `edges_per_second` doubles as ops/second
        // (queries, tiles) for these rows.
        let scene_started = std::time::Instant::now();
        let mut scene_session = TerrainPipeline::from_measure(&graph, measure.clone());
        let scene = match scene_session.scene() {
            Ok(scene) => scene,
            Err(e) => {
                eprintln!("[error] {rung_name} scene build failed: {e}");
                std::process::exit(1);
            }
        };
        let scene_build_seconds = scene_started.elapsed().as_secs_f64();
        let viewports: Vec<graph_terrain::Rect> = {
            let mut v = Vec::new();
            for zoom in 0..=4u8 {
                let per_axis = 1u32 << zoom;
                // The diagonal plus the anti-diagonal: corner, center and
                // edge viewports at every zoom, fixed for every run.
                for i in 0..per_axis {
                    let key = graph_terrain::TileKey { zoom, tx: i, ty: i };
                    v.push(scene.tile_bounds(&key).expect("zoom <= 4 is inside the default grid"));
                    let key = graph_terrain::TileKey { zoom, tx: per_axis - 1 - i, ty: i };
                    v.push(scene.tile_bounds(&key).expect("zoom <= 4 is inside the default grid"));
                }
            }
            v
        };
        const TILE_ITERS: usize = 3;
        let mut query_sweep_seconds = f64::INFINITY;
        let mut query_results = 0usize;
        for _ in 0..TILE_ITERS {
            let sweep_started = std::time::Instant::now();
            let mut found = 0usize;
            for viewport in &viewports {
                found += scene.query(viewport).len();
            }
            query_sweep_seconds = query_sweep_seconds.min(sweep_started.elapsed().as_secs_f64());
            query_results = found;
        }
        let query_mean_seconds = query_sweep_seconds / viewports.len() as f64;

        let render_key = graph_terrain::TileKey { zoom: 2, tx: 1, ty: 1 };
        let mut tile_render_seconds = f64::INFINITY;
        let mut tile_bytes: Option<Vec<u8>> = None;
        for _ in 0..TILE_ITERS {
            let mut bytes = Vec::new();
            let render_started = std::time::Instant::now();
            if let Err(e) = scene.write_tile_svg(&render_key, 256, &mut bytes) {
                eprintln!("[error] {rung_name} tile render failed: {e}");
                std::process::exit(1);
            }
            tile_render_seconds = tile_render_seconds.min(render_started.elapsed().as_secs_f64());
            match &tile_bytes {
                Some(first) if *first != bytes => {
                    eprintln!("[error] {rung_name} tile render is not deterministic");
                    std::process::exit(1);
                }
                Some(_) => {}
                None => tile_bytes = Some(bytes),
            }
        }
        for (storage, seconds, ops) in [
            ("tile-query", query_mean_seconds, viewports.len()),
            ("tile-render", tile_render_seconds, 1usize),
        ] {
            report.rungs.push(RungResult {
                rung: rung_name.to_string(),
                generator: "rmat".to_string(),
                scale,
                target_edges,
                vertices: graph.vertex_count(),
                edges: graph.edge_count(),
                generate_seconds: scene_build_seconds,
                measure: measure_name.clone(),
                storage: storage.to_string(),
                open_seconds: None,
                parallelism: "serial".to_string(),
                threads: 1,
                width: 1,
                stages: StageSeconds::default(),
                total_seconds: seconds,
                edges_per_second: if seconds > 0.0 { ops as f64 / seconds } else { 0.0 },
                peak_rss_bytes: peak_rss_bytes(),
            });
        }
        println!(
            "  tiles ({} items, scene {scene_build_seconds:.3}s): query mean {:.1}µs over {} viewports ({query_results} results) · render z2 {:.3}s ({} bytes)",
            scene.item_count(),
            query_mean_seconds * 1e6,
            viewports.len(),
            tile_render_seconds,
            tile_bytes.as_ref().map(Vec::len).unwrap_or(0),
        );
    }
    let _ = std::fs::remove_dir(&snapshot_dir);

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let path = match write_artifact(&out_name, &json) {
        Ok(path) => path,
        Err(e) => {
            eprintln!("[error] could not write {out_name}: {e}");
            std::process::exit(1);
        }
    };
    println!("\n{}", format_table_for(&report));
    println!("baseline written to {}", path.display());

    if let Some(reference_name) = flag_value(&args, "--compare") {
        let reference_path = {
            let as_given = std::path::PathBuf::from(&reference_name);
            if as_given.exists() {
                as_given
            } else {
                results_dir().join(&reference_name)
            }
        };
        let reference_text = match std::fs::read_to_string(&reference_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("[error] cannot read reference {}: {e}", reference_path.display());
                std::process::exit(1);
            }
        };
        let current = serde_json::from_str(&json).expect("own output parses");
        let reference = match serde_json::from_str(&reference_text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("[error] reference {} is not JSON: {e}", reference_path.display());
                std::process::exit(1);
            }
        };
        for doc in [("current", &current), ("reference", &reference)] {
            let errors = validate(doc.1);
            if !errors.is_empty() {
                eprintln!("[error] {} baseline fails schema validation:", doc.0);
                for e in errors {
                    eprintln!("  - {e}");
                }
                std::process::exit(1);
            }
        }
        let problems = compare(&current, &reference, tolerance);
        if problems.is_empty() {
            println!("no regression vs {} at {tolerance:.1}x tolerance", reference_path.display());
        } else {
            eprintln!("[error] perf regression vs {}:", reference_path.display());
            for p in &problems {
                eprintln!("  - {p}");
            }
            std::process::exit(1);
        }
    }
}
