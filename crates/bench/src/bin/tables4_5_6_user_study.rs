//! Tables IV, V and VI — the (simulated) user study.
//!
//! Runs the full factorial design of Section IV — Tasks 1 and 2 on the GrQc,
//! PPI and DBLP analogs, Task 3 on the Astro analog, ten simulated
//! participants per cell, Terrain vs LaNet-vi vs OpenOrd — and prints the
//! accuracy / mean-time tables in the paper's layout. See DESIGN.md §4 for the
//! human-participant substitution.

use bench::datasets::DatasetKind;
use bench::output::write_artifact;
use bench::parallelism::parallelism_from_args;
use study::report::format_tables;
use study::{run_user_study, StudyConfig, Task};

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") { 1.0 } else { 0.3 };
    let parallelism = parallelism_from_args();
    eprintln!("[user-study] measure parallelism: {parallelism}");
    let task12_datasets: Vec<(String, ugraph::CsrGraph)> =
        [DatasetKind::GrQc, DatasetKind::Ppi, DatasetKind::Dblp]
            .into_iter()
            .map(|kind| {
                let d = kind.generate(scale);
                eprintln!(
                    "[user-study] {} analog: {} nodes, {} edges",
                    d.spec.name,
                    d.graph.vertex_count(),
                    d.graph.edge_count()
                );
                (d.spec.name.to_string(), d.graph)
            })
            .collect();
    let astro = DatasetKind::Astro.generate(scale * 0.6);
    eprintln!(
        "[user-study] Astro analog: {} nodes, {} edges",
        astro.graph.vertex_count(),
        astro.graph.edge_count()
    );

    let design = vec![
        (Task::DensestKCore, task12_datasets.clone()),
        (Task::SecondDisconnectedKCore, task12_datasets),
        (Task::CentralityCorrelation, vec![("Astro".to_string(), astro.graph)]),
    ];

    let config = StudyConfig { participants: 10, parallelism, ..Default::default() };
    let rows = run_user_study(&design, &config);
    let tables = format_tables(&rows);
    println!("Tables IV–VI — simulated user study (10 participants per cell)\n");
    println!("{tables}");
    println!(
        "Expected shape (matching the paper's ordinal findings): Terrain accuracy ≥\n\
         the baselines on every dataset, Terrain mean times lowest, Task 2 notably\n\
         harder than Task 1 for LaNet-vi and OpenOrd, and Terrain ahead of OpenOrd\n\
         on the Task 3 correlation judgment."
    );
    let _ = write_artifact("tables4_5_6_user_study.txt", &tables);
}
