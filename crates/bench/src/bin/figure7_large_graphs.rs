//! Figure 7 — K-Core and K-Truss terrains of the Wikipedia and Cit-Patent
//! analogs, with the densest K-Core / K-Truss drill-down of Figures 7(e,f).
//!
//! The default scale keeps the run to a few seconds; `--large` uses 10x more
//! vertices for a scalability exercise closer to the paper's full datasets,
//! and `--threads <serial|auto|N>` sets the measure-stage parallelism.
//! `--input <path> [--input-format <name>]` pushes a *real* million-edge
//! dump through the pipeline (ingested via `GraphSource`) instead of the
//! analogs — the actual Figure 7 experiment when the SNAP files are on disk.

use bench::cli::input_dataset_from;
use bench::datasets::DatasetKind;
use bench::output::{format_table, write_artifact};
use bench::parallelism::parallelism_from;
use bench::pipeline::{run_edge_pipeline_with, run_vertex_pipeline_with};
use measures::{core_numbers, truss_numbers_with};
use ugraph::CsrGraph;

/// One unit of figure work: a pre-loaded real file, or an analog generated
/// on demand (so only one graph is alive at a time).
enum Work {
    File(String, CsrGraph),
    Analog(DatasetKind),
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let large = args.iter().any(|a| a == "--large");
    let parallelism = parallelism_from(&args);
    eprintln!("[figure7] measure parallelism: {parallelism}");
    let mut rows = Vec::new();

    // Both analogs are large by design — generate them one at a time so only
    // one graph is alive per iteration (with --large this halves peak memory).
    let work: Vec<Work> = match input_dataset_from(&args) {
        Some(file) => vec![Work::File(file.name, file.graph)],
        None => [DatasetKind::Wikipedia, DatasetKind::CitPatent].map(Work::Analog).into(),
    };

    for item in work {
        let (name, graph) = match item {
            Work::File(name, graph) => (name, graph),
            Work::Analog(kind) => {
                let scale = if large {
                    (kind.default_scale() * 10.0).min(1.0)
                } else {
                    kind.default_scale()
                };
                let dataset = kind.generate(scale);
                eprintln!(
                    "[figure7] {} analog at scale {scale:.2}: {} nodes, {} edges",
                    dataset.spec.name,
                    dataset.graph.vertex_count(),
                    dataset.graph.edge_count()
                );
                (dataset.spec.name.to_string(), dataset.graph)
            }
        };
        let graph = &graph;
        let name = &name;
        // Full pipelines (also produce the terrains as SVG via the pipeline
        // helpers' internals; here we re-run the decompositions to report the
        // densest structures of Figures 7(e,f)).
        let vreport = match run_vertex_pipeline_with(graph, parallelism) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("[figure7] {name} KC(v) pipeline failed: {e}");
                continue;
            }
        };
        let ereport = match run_edge_pipeline_with(graph, false, parallelism) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("[figure7] {name} KT(e) pipeline failed: {e}");
                continue;
            }
        };

        let cores = core_numbers(graph);
        let densest_core = cores.densest_core_vertices();
        let truss = truss_numbers_with(graph, parallelism);
        let densest_truss = truss.densest_truss_edges();

        rows.push(vec![
            name.clone(),
            graph.vertex_count().to_string(),
            graph.edge_count().to_string(),
            format!("K={} ({} vertices)", cores.degeneracy, densest_core.len()),
            format!("K={} ({} edges)", truss.max_truss, densest_truss.len()),
            vreport.super_tree_nodes.to_string(),
            ereport.super_tree_nodes.to_string(),
        ]);
    }

    let table = format_table(
        &["dataset", "nodes", "edges", "densest K-Core", "densest K-Truss", "Nt (KC)", "Nt (KT)"],
        &rows,
    );
    println!("Figure 7 — large-graph terrains and densest-structure drill-down\n\n{table}");
    println!(
        "Expected shape: the Wikipedia analog (preferential attachment) has a much\n\
         denser maximal core/truss than the Cit-Patent analog (sparse citations),\n\
         and both graphs reduce to super trees orders of magnitude smaller than\n\
         the input."
    );
    let _ = write_artifact("figure7_large_graphs.txt", &table);
}
