//! Table II — terrain visualization time cost.
//!
//! For each (dataset, scalar) pair of the paper's Table II, runs the full
//! pipeline and reports the super-tree size `Nt`, the tree construction time
//! `tc`, the naive dual-graph edge-tree time `te` (edge scalars only) and the
//! visualization time `tv`.
//!
//! By default the two giant datasets run at a reduced scale so the harness
//! finishes quickly; pass `--large` to use a 10x larger scale (still bounded
//! by memory), `--skip-naive` to skip the quadratic dual-graph baseline,
//! `--threads <serial|auto|N>` to set the measure-stage parallelism
//! (timings change, numbers don't), and `--render-budget <N>` to change the
//! Section II-E simplification threshold (default 4000 super nodes).
//! `--input <path> [--input-format <name>]` times a *real* graph file
//! (ingested through `GraphSource`) instead of the synthetic analogs.

use bench::cli::input_dataset_from;
use bench::datasets::DatasetKind;
use bench::output::{format_table, write_artifact};
use bench::parallelism::parallelism_from;
use bench::pipeline::{
    run_edge_pipeline_configured, run_vertex_pipeline_configured, PipelineConfig,
};
use ugraph::CsrGraph;

/// One unit of table work: a pre-loaded real file, or an analog generated
/// on demand (so only one graph is alive at a time).
enum Work {
    File(String, CsrGraph),
    Analog(DatasetKind),
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let large = args.iter().any(|a| a == "--large");
    let skip_naive = args.iter().any(|a| a == "--skip-naive");
    let parallelism = parallelism_from(&args);
    let budget = args
        .iter()
        .position(|a| a == "--render-budget")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(PipelineConfig::default().render_node_budget);
    let config = PipelineConfig { parallelism, render_node_budget: budget, ..Default::default() };
    eprintln!("[table2] measure parallelism: {parallelism}; render budget: {budget}");

    // The workload: one real file (--input), or the four synthetic analogs.
    // Graphs materialize one at a time inside the loop — with --large two of
    // the analogs are million-edge graphs, and holding all four at once
    // would multiply the peak memory of exactly the scalability runs this
    // binary exists for.
    let work: Vec<Work> = match input_dataset_from(&args) {
        Some(file) => vec![Work::File(file.name, file.graph)],
        None => [
            DatasetKind::GrQc,
            DatasetKind::WikiVote,
            DatasetKind::Wikipedia,
            DatasetKind::CitPatent,
        ]
        .map(Work::Analog)
        .into(),
    };

    let mut rows = Vec::new();
    for item in work {
        let (name, graph) = match item {
            Work::File(name, graph) => (name, graph),
            Work::Analog(kind) => {
                let scale = if large {
                    (kind.default_scale() * 10.0).min(1.0)
                } else {
                    kind.default_scale()
                };
                let dataset = kind.generate(scale);
                eprintln!(
                    "[table2] {} at scale {scale:.2}: {} nodes, {} edges",
                    dataset.spec.name,
                    dataset.graph.vertex_count(),
                    dataset.graph.edge_count()
                );
                (dataset.spec.name.to_string(), dataset.graph)
            }
        };
        let graph = &graph;
        let name = &name;
        // KC(v) row.
        let vreport = match run_vertex_pipeline_configured(graph, &config) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("[table2] {name} KC(v) pipeline failed: {e}");
                continue;
            }
        };
        rows.push(vec![
            name.clone(),
            "KC(v)".to_string(),
            vreport.super_tree_nodes.to_string(),
            format!("{:.4}", vreport.tree_seconds),
            "-".to_string(),
            format!("{:.4}", vreport.visualization_seconds),
        ]);

        // KT(e) row. The naive baseline is only attempted on graphs whose dual
        // stays manageable, mirroring how the paper could not run it at all
        // scales either.
        let dual_edges = ugraph::dual::estimated_dual_edges(graph);
        let run_naive = !skip_naive && dual_edges < 30_000_000;
        let ereport = match run_edge_pipeline_configured(graph, run_naive, &config) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("[table2] {name} KT(e) pipeline failed: {e}");
                continue;
            }
        };
        rows.push(vec![
            name.clone(),
            "KT(e)".to_string(),
            ereport.super_tree_nodes.to_string(),
            format!("{:.4}", ereport.tree_seconds),
            ereport
                .naive_tree_seconds
                .map(|t| format!("{t:.4}"))
                .unwrap_or_else(|| "(skipped)".to_string()),
            format!("{:.4}", ereport.visualization_seconds),
        ]);
    }

    let table = format_table(&["dataset", "scalar", "Nt", "tc(s)", "te(s)", "tv(s)"], &rows);
    println!("Table II — terrain visualization time cost (seconds)\n");
    println!("{table}");
    println!(
        "Expected shape: tc grows near-linearly with |E|; te >> tc wherever it runs\n\
         (the dual graph is quadratic in vertex degree); tv is small once the tree\n\
         is simplified below the render budget."
    );
    if let Ok(path) = write_artifact("table2_timing.txt", &table) {
        println!("wrote {}", path.display());
    }
}
