//! Figure 9 — roles over a community of the Amazon co-purchase analog.
//!
//! The terrain of one community is drawn from the community score and colored
//! by each vertex's dominant role; the harness checks the reading the paper
//! gives: the hub vertex has the highest community score (green summit), the
//! dense community members sit directly below it (blue), and peripheral
//! vertices form the low red skirt.

use bench::output::{format_table, write_artifact};
use graph_terrain::{SimplificationConfig, SvgSize, TerrainPipeline};
use measures::{assign_roles, Role};
use terrain::{role_palette, ColorScheme, Exporter, RenderScene, TreemapSvg};
use ugraph::generators::hub_periphery_community;

fn main() {
    // One Amazon-like community: a hub book, a dense cluster of closely
    // related books, peripheral books and a few whiskers.
    let planted = hub_periphery_community(60, 140, 40, 0xa9a);
    let graph = &planted.graph;
    println!(
        "Figure 9 — Amazon community analog: {} vertices, {} edges",
        graph.vertex_count(),
        graph.edge_count()
    );

    // Detected roles (the RolX-substitute classifier).
    let detected = assign_roles(graph);

    // Terrain from the community score, colored by dominant role.
    let classes: Vec<usize> = detected.roles.iter().map(|r| r.code()).collect();
    let mut session = TerrainPipeline::vertex(graph, planted.community_score.clone())
        .expect("valid community score field");
    session
        .set_simplification(SimplificationConfig::disabled())
        .set_color(ColorScheme::ByClass { classes: classes.clone(), palette: role_palette() })
        .set_svg_size(SvgSize::new(900.0, 700.0));

    // Mean community score per detected role: the vertical ordering the
    // terrain shows (hub on top, then dense, then periphery, then whiskers).
    let mut rows = Vec::new();
    for role in [Role::Hub, Role::DenseCommunity, Role::Periphery, Role::Whisker] {
        let members: Vec<usize> =
            (0..graph.vertex_count()).filter(|&v| detected.roles[v] == role).collect();
        if members.is_empty() {
            rows.push(vec![role.name().to_string(), "0".to_string(), "-".to_string()]);
            continue;
        }
        let mean_score: f64 =
            members.iter().map(|&v| planted.community_score[v]).sum::<f64>() / members.len() as f64;
        rows.push(vec![
            role.name().to_string(),
            members.len().to_string(),
            format!("{mean_score:.2}"),
        ]);
    }
    let table = format_table(&["detected role", "vertices", "mean community score"], &rows);
    println!("\n{table}");
    println!(
        "Expected shape: mean community score decreases hub → dense-community →\n\
         periphery → whisker, i.e. the roles stratify vertically on the terrain\n\
         exactly as Figure 9(a) shows."
    );

    let stages = session.stages().expect("role terrain stages");
    let scene = RenderScene::new(stages.render_tree, stages.layout, stages.mesh);
    let treemap_svg = TreemapSvg::new(900.0, 700.0).export_string(&scene).expect("treemap render");
    let _ = write_artifact("figure9_roles_terrain.svg", &session.build().expect("svg stage"));
    let _ = write_artifact("figure9_roles_treemap.svg", &treemap_svg);
    let _ = write_artifact("figure9_summary.txt", &table);
}
