//! Figure 4 — scalar tree → 2D layout → 3D terrain on the paper's 9-node
//! example, plus the peak5 / peak3 cross-sections of Figures 4(d)–(i).
//!
//! `--format <svg|treemap|obj|ply|ascii|json>` picks the render backend for
//! the 3D artifact (default `svg`).

use bench::cli::exporter_from_args;
use bench::output::write_artifact;
use graph_terrain::{SvgSize, TerrainPipeline};
use scalarfield::component_members_at_alpha;
use terrain::{peaks_at_alpha, Ascii, Exporter, RenderScene, TreemapSvg};
use ugraph::GraphBuilder;

fn main() {
    let exporter = exporter_from_args("svg");

    // The worked example of Figure 2/4: nine vertices, two high-scalar regions
    // meeting at lower-scalar vertices.
    let mut b = GraphBuilder::new();
    b.extend_edges([(0u32, 1u32), (0, 2), (1, 4), (2, 4)]);
    b.add_edge(3, 5);
    b.extend_edges([(2u32, 6u32), (5, 6)]);
    b.add_edge(6, 7);
    b.add_edge(7, 8);
    let graph = b.build();
    let scalar = vec![3.0, 3.0, 4.0, 3.0, 5.0, 4.0, 2.0, 1.5, 1.0];

    let mut session = TerrainPipeline::vertex(&graph, scalar).expect("valid 9-vertex field");
    session.set_svg_size(SvgSize::new(900.0, 700.0));
    let stages = session.stages().expect("toy pipeline stages");
    let (tree, layout, mesh) = (stages.render_tree, stages.layout, stages.mesh);
    let scene = RenderScene::new(tree, layout, mesh);

    println!("Figure 4 — terrain pipeline on the 9-vertex example");
    println!("super tree nodes: {}", tree.node_count());
    println!("terrain mesh: {} vertices, {} triangles", mesh.vertex_count(), mesh.triangle_count());

    for alpha in [5.0, 3.0, 2.5] {
        let peaks = peaks_at_alpha(tree, layout, alpha);
        println!("peaks at alpha = {alpha}: {}", peaks.len());
        for p in &peaks {
            println!(
                "  peak rooted at super node {} — members {:?}, summit {:.1}, base area {:.4}",
                p.root_node,
                p.members,
                p.summit_height,
                p.base_area()
            );
        }
        // Cross-check against the tree-level cut.
        let sets = component_members_at_alpha(tree, alpha);
        assert_eq!(sets.len(), peaks.len());
    }

    println!("\nASCII terrain (top view, height-coded):\n");
    println!("{}", Ascii::new(64, 20).export_string(&scene).expect("ascii render"));

    let svg2d = TreemapSvg::new(900.0, 700.0).export_string(&scene).expect("treemap render");
    let artifact = exporter.export_string(&scene).expect("3D artifact render");
    let name = format!("figure4_terrain.{}", exporter.file_extension());
    if let Ok(p) = write_artifact(&name, &artifact) {
        println!("wrote {} ({} backend)", p.display(), exporter.name());
    }
    if let Ok(p) = write_artifact("figure4_layout2d.svg", &svg2d) {
        println!("wrote {}", p.display());
    }
}
