//! Figure 4 — scalar tree → 2D layout → 3D terrain on the paper's 9-node
//! example, plus the peak5 / peak3 cross-sections of Figures 4(d)–(i).

use bench::output::write_artifact;
use graph_terrain::{SvgSize, TerrainPipeline};
use scalarfield::component_members_at_alpha;
use terrain::{ascii_heightmap, build_treemap, peaks_at_alpha, treemap_to_svg};
use ugraph::GraphBuilder;

fn main() {
    // The worked example of Figure 2/4: nine vertices, two high-scalar regions
    // meeting at lower-scalar vertices.
    let mut b = GraphBuilder::new();
    b.extend_edges([(0u32, 1u32), (0, 2), (1, 4), (2, 4)]);
    b.add_edge(3, 5);
    b.extend_edges([(2u32, 6u32), (5, 6)]);
    b.add_edge(6, 7);
    b.add_edge(7, 8);
    let graph = b.build();
    let scalar = vec![3.0, 3.0, 4.0, 3.0, 5.0, 4.0, 2.0, 1.5, 1.0];

    let mut session = TerrainPipeline::vertex(&graph, scalar).expect("valid 9-vertex field");
    session.set_svg_size(SvgSize::new(900.0, 700.0));
    let stages = session.stages().expect("toy pipeline stages");
    let (tree, layout, mesh) = (stages.render_tree, stages.layout, stages.mesh);

    println!("Figure 4 — terrain pipeline on the 9-vertex example");
    println!("super tree nodes: {}", tree.node_count());
    println!("terrain mesh: {} vertices, {} triangles", mesh.vertex_count(), mesh.triangle_count());

    for alpha in [5.0, 3.0, 2.5] {
        let peaks = peaks_at_alpha(tree, layout, alpha);
        println!("peaks at alpha = {alpha}: {}", peaks.len());
        for p in &peaks {
            println!(
                "  peak rooted at super node {} — members {:?}, summit {:.1}, base area {:.4}",
                p.root_node,
                p.members,
                p.summit_height,
                p.base_area()
            );
        }
        // Cross-check against the tree-level cut.
        let sets = component_members_at_alpha(tree, alpha);
        assert_eq!(sets.len(), peaks.len());
    }

    println!("\nASCII terrain (top view, height-coded):\n");
    println!("{}", ascii_heightmap(layout, 64, 20));

    let svg2d = treemap_to_svg(&build_treemap(tree, layout), 900.0, 700.0);
    let svg3d = session.build().expect("svg stage");
    if let Ok(p) = write_artifact("figure4_terrain.svg", &svg3d) {
        println!("wrote {}", p.display());
    }
    if let Ok(p) = write_artifact("figure4_layout2d.svg", &svg2d) {
        println!("wrote {}", p.display());
    }
}
