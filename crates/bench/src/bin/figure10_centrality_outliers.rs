//! Figure 10 — comparing degree and betweenness centrality on the Astro
//! analog through the Local/Global Correlation Index and the outlier-score
//! terrain.
//!
//! The harness reports the GCI (the paper measures 0.89 on the real Astro
//! graph), builds the outlier-score terrain colored by degree, and drills into
//! the top outlier vertices to confirm the paper's reading: they are
//! bridge-like vertices with modest degree but relatively high betweenness.

use bench::datasets::DatasetKind;
use bench::output::{format_table, write_artifact};
use bench::parallelism::parallelism_from_args;
use graph_terrain::{SimplificationConfig, SvgSize, TerrainPipeline};
use measures::{betweenness_centrality_sampled_with, degrees};
use scalarfield::{global_correlation_index, local_correlation_index, outlier_scores};
use terrain::ColorScheme;
use ugraph::VertexId;

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") { 1.0 } else { 0.25 };
    let dataset = DatasetKind::Astro.generate(scale);
    let graph = &dataset.graph;
    println!(
        "Figure 10 — Astro analog: {} nodes, {} edges",
        graph.vertex_count(),
        graph.edge_count()
    );

    let parallelism = parallelism_from_args();
    println!("betweenness parallelism: {parallelism} (results are thread-count independent)");
    let degree_field: Vec<f64> = degrees(graph).iter().map(|&d| d as f64).collect();
    let betweenness = betweenness_centrality_sampled_with(graph, 256, 0xf16, parallelism);

    let gci = global_correlation_index(graph, &degree_field, &betweenness, 1).unwrap();
    let lci = local_correlation_index(graph, &degree_field, &betweenness, 1).unwrap();
    let outliers = outlier_scores(graph, &degree_field, &betweenness, 1).unwrap();
    println!("Global Correlation Index (degree vs betweenness): {gci:.2}");
    println!("(paper reports 0.89 on the real Astro network — expect a strongly positive value)");

    // Outlier-score terrain colored by degree.
    let mut session =
        TerrainPipeline::vertex(graph, outliers.clone()).expect("valid outlier score field");
    session
        .set_simplification(SimplificationConfig::disabled())
        .set_color(ColorScheme::BySecondaryScalar(degree_field.clone()))
        .set_svg_size(SvgSize::new(900.0, 700.0));
    let _ = write_artifact("figure10_outlier_terrain.svg", &session.build().expect("svg stage"));

    // Drill-down: the top outlier vertices (restricted to vertices with a
    // meaningful neighborhood, as the paper's drill-down does by construction).
    let mut order: Vec<usize> =
        (0..graph.vertex_count()).filter(|&v| graph.degree(VertexId::from_index(v)) >= 2).collect();
    order.sort_by(|&a, &b| outliers[b].total_cmp(&outliers[a]));
    let mut rows = Vec::new();
    let avg_degree = graph.average_degree();
    for &v in order.iter().take(5) {
        let vid = VertexId::from_index(v);
        rows.push(vec![
            v.to_string(),
            format!("{:.2}", outliers[v]),
            format!("{:.2}", lci[v]),
            graph.degree(vid).to_string(),
            format!("{:.1}", betweenness[v]),
        ]);
    }
    let table = format_table(&["vertex", "outlier score", "LCI", "degree", "betweenness"], &rows);
    println!("\nTop outlier vertices (lowest local correlation):\n\n{table}");
    println!(
        "Expected shape: GCI strongly positive while the top outliers' LCI sits far\n\
         below it, with low-to-moderate degree (graph average {avg_degree:.1}) —\n\
         bridge-like vertices whose betweenness is high relative to their degree."
    );
    let _ = write_artifact("figure10_summary.txt", &format!("GCI = {gci:.3}\n\n{table}"));
}
