//! Figure 6 — visualizing dense subgraphs: spring layouts, K-Core terrains,
//! K-Truss terrain, LaNet-vi 2D K-Core plot and the CSV plot, on the GrQc and
//! WikiVote analogs.
//!
//! The quantitative claims this harness checks and reports:
//!
//! * GrQc (collaboration): several disconnected dense K-Cores → several high
//!   terrain peaks;
//! * WikiVote (preferential attachment): one densest K-Core → a single
//!   dominant peak;
//! * the terrain exposes the containment hierarchy (a dense peak sits on a
//!   broader, lower foundation), which the flat plots do not.

use baselines::{csv_plot, lanet_layout, layout_to_svg, spring_layout, SpringConfig};
use bench::datasets::DatasetKind;
use bench::output::{format_table, write_artifact};
use graph_terrain::{Measure, SimplificationConfig, SvgSize, TerrainPipeline};
use measures::core_numbers;
use terrain::{highest_peaks, peaks_at_alpha};

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") { 1.0 } else { 0.4 };
    let mut rows = Vec::new();

    for kind in [DatasetKind::GrQc, DatasetKind::WikiVote] {
        let dataset = kind.generate(scale);
        let graph = &dataset.graph;
        let name = dataset.spec.name;
        eprintln!(
            "[figure6] {} analog: {} nodes, {} edges",
            name,
            graph.vertex_count(),
            graph.edge_count()
        );

        // --- K-Core terrain -------------------------------------------------
        let cores = core_numbers(graph);
        let mut session = TerrainPipeline::from_measure(graph, Measure::KCore);
        session
            .set_simplification(SimplificationConfig::disabled())
            .set_svg_size(SvgSize::new(900.0, 700.0));
        let stages = session.stages().expect("k-core terrain stages");
        let (tree, layout) = (stages.render_tree, stages.layout);

        // How many disconnected dense cores exist at 60% of the degeneracy?
        let alpha = (cores.degeneracy as f64 * 0.6).floor().max(2.0);
        let dense_peaks = peaks_at_alpha(tree, layout, alpha);

        // Containment: does the tallest peak sit on a broader lower foundation?
        let tallest = highest_peaks(tree, layout, 1);
        let foundation = tallest.first().map(|p| {
            let root = p.root_node;
            let mut depth = 0;
            let mut node = root;
            while let Some(parent) = tree.parent(node) {
                depth += 1;
                node = parent;
            }
            depth
        });

        rows.push(vec![
            name.to_string(),
            cores.degeneracy.to_string(),
            format!("{alpha:.0}"),
            dense_peaks.len().to_string(),
            foundation.map(|d| d.to_string()).unwrap_or_default(),
        ]);

        let _ = write_artifact(
            &format!("figure6_{name}_kcore_terrain.svg"),
            &session.build().expect("svg stage"),
        );

        // --- spring layout baseline ------------------------------------------
        let spring = spring_layout(graph, &SpringConfig { iterations: 40, ..Default::default() });
        let _ = write_artifact(
            &format!("figure6_{name}_spring.svg"),
            &layout_to_svg(graph, &spring, 900.0, 700.0, 30_000),
        );

        // --- LaNet-vi style shell plot ---------------------------------------
        let lanet = lanet_layout(graph, 7);
        let _ = write_artifact(
            &format!("figure6_{name}_lanet.svg"),
            &layout_to_svg(graph, &lanet.layout, 900.0, 700.0, 30_000),
        );

        // --- CSV plot ---------------------------------------------------------
        let plot = csv_plot(graph);
        let _ = write_artifact(&format!("figure6_{name}_csv.svg"), &plot.to_svg(900.0, 300.0));

        // --- K-Truss terrain (GrQc only, as in the paper) ----------------------
        if kind == DatasetKind::GrQc {
            let mut esession = TerrainPipeline::from_measure(graph, Measure::KTruss);
            esession
                .set_simplification(SimplificationConfig::disabled())
                .set_svg_size(SvgSize::new(900.0, 700.0));
            let max_truss = esession
                .scalar()
                .expect("k-truss scalar stage")
                .iter()
                .fold(0.0f64, |a, &b| a.max(b));
            let nodes = esession.super_tree().expect("k-truss super tree").node_count();
            let _ = write_artifact(
                &format!("figure6_{name}_ktruss_terrain.svg"),
                &esession.build().expect("svg stage"),
            );
            println!("{name} K-Truss terrain: max KT = {max_truss:.0}, super tree nodes = {nodes}");
        }
    }

    let table = format_table(
        &["dataset", "degeneracy", "alpha(0.6K)", "disconnected dense peaks", "tallest-peak depth"],
        &rows,
    );
    println!("\nFigure 6 — dense-subgraph landscape summary\n\n{table}");
    println!(
        "Expected shape: the GrQc analog shows several disconnected dense peaks;\n\
         the WikiVote analog shows a single dominant peak; tallest peaks sit on\n\
         multi-level foundations (containment hierarchy)."
    );
    let _ = write_artifact("figure6_summary.txt", &table);
}
