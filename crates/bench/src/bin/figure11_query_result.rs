//! Figure 11 — terrain visualization of a SQL query result modeled as a
//! nearest-neighbor graph over a plant-genus attribute table.
//!
//! The harness builds the synthetic 3-genus table, the NN graph, and one
//! terrain per attribute (attribute 1 and attribute 2 as heights, genus as
//! color), then checks the three observations of Section III-D: three genus
//! groups are visible, the blue genus is separated from the other two, and
//! attribute 1 separates the genera better than attribute 2.

use bench::nn_graph::{generate_plant_table, knn_graph};
use bench::output::{format_table, write_artifact};
use graph_terrain::{SimplificationConfig, SvgSize, TerrainPipeline};
use terrain::{Color, ColorScheme};
use ugraph::traversal::connected_components;

fn main() {
    let table = generate_plant_table(80, 0x9a07);
    let graph = knn_graph(&table, 6, 1.5);
    println!(
        "Figure 11 — query-result NN graph: {} rows, {} edges",
        graph.vertex_count(),
        graph.edge_count()
    );

    // Observation (i)/(ii): genus connectivity in the NN graph.
    let cc = connected_components(&graph);
    let blue_separated = (0..table.rows.len()).filter(|&v| table.genus[v] == 2).all(|v| {
        (0..table.rows.len()).filter(|&u| table.genus[u] != 2).all(|u| {
            !cc.same_component(ugraph::VertexId::from_index(v), ugraph::VertexId::from_index(u))
        })
    });
    println!("blue genus separated from the other two: {blue_separated}");

    // Genus palette: red, green, blue as in the figure.
    let palette = vec![Color::rgb(214, 49, 37), Color::rgb(58, 178, 94), Color::rgb(43, 98, 209)];

    let mut rows = Vec::new();
    for attribute in [0usize, 1] {
        let scalar = table.attribute(attribute);
        let mut session =
            TerrainPipeline::vertex(&graph, scalar.clone()).expect("valid attribute field");
        session
            .set_simplification(SimplificationConfig::disabled())
            .set_color(ColorScheme::ByClass {
                classes: table.genus.clone(),
                palette: palette.clone(),
            })
            .set_svg_size(SvgSize::new(900.0, 700.0));
        let node_count = session.super_tree().expect("attribute super tree").node_count();
        let _ = write_artifact(
            &format!("figure11_attribute{}_terrain.svg", attribute + 1),
            &session.build().expect("svg stage"),
        );

        // Observation (iii): genus separability of the attribute = variance of
        // per-genus mean heights relative to within-genus variance.
        let mut between = 0.0;
        let mut within = 0.0;
        let overall: f64 = scalar.iter().sum::<f64>() / scalar.len() as f64;
        for g in 0..3usize {
            let members: Vec<f64> = scalar
                .iter()
                .zip(&table.genus)
                .filter(|(_, &gg)| gg == g)
                .map(|(v, _)| *v)
                .collect();
            let mean: f64 = members.iter().sum::<f64>() / members.len() as f64;
            between += members.len() as f64 * (mean - overall).powi(2);
            within += members.iter().map(|v| (v - mean).powi(2)).sum::<f64>();
        }
        rows.push(vec![
            format!("attribute {}", attribute + 1),
            format!("{:.2}", between / within.max(1e-9)),
            node_count.to_string(),
        ]);
    }

    let summary = format_table(&["scalar", "genus separability (F ratio)", "Nt"], &rows);
    println!("\n{summary}");
    println!(
        "Expected shape: the blue genus is disconnected from the others in the NN\n\
         graph, and attribute 1's separability ratio is several times attribute 2's\n\
         (greater variance in terrain heights across genera)."
    );
    let _ = write_artifact("figure11_summary.txt", &summary);
}
