//! Query-result visualization substrate (Figure 11): a synthetic attribute
//! table and its nearest-neighbor graph.
//!
//! The paper models the output of a SQL query over a plant-genus database as a
//! 5-attribute materialized table, builds a nearest-neighbor graph over the
//! rows (distance measure and threshold chosen by a domain expert) and draws
//! terrains using individual attributes as the scalar. We plant the structure
//! the figure demonstrates: three genus clusters, one well separated from the
//! other two, with attribute 1 more genus-separable than attribute 2.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ugraph::{CsrGraph, GraphBuilder};

/// A synthetic query-result table.
#[derive(Clone, Debug)]
pub struct PlantTable {
    /// Attribute matrix: `rows[i]` has 5 attribute values.
    pub rows: Vec<[f64; 5]>,
    /// Genus label per row (0, 1, 2).
    pub genus: Vec<usize>,
}

impl PlantTable {
    /// One attribute as a scalar field over the rows.
    pub fn attribute(&self, index: usize) -> Vec<f64> {
        self.rows.iter().map(|r| r[index]).collect()
    }
}

/// Generate the synthetic plant-genus query result.
///
/// * genus 0 ("red") is nested inside genus 1 ("green") in attribute space —
///   closer to it and partially contained within it;
/// * genus 2 ("blue") is well separated from both;
/// * attribute 0 separates the genera strongly, attribute 1 weakly — the
///   Figure 11 observation that attribute 1 "demonstrates greater genus
///   separability".
pub fn generate_plant_table(rows_per_genus: usize, seed: u64) -> PlantTable {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(rows_per_genus * 3);
    let mut genus = Vec::with_capacity(rows_per_genus * 3);
    for g in 0..3usize {
        // Attribute-0 centers far apart; attribute-1 centers close together.
        let center0 = match g {
            0 => 2.0,
            1 => 3.0,
            _ => 9.0,
        };
        let center1 = match g {
            0 => 5.0,
            1 => 5.4,
            _ => 6.0,
        };
        for _ in 0..rows_per_genus {
            let mut row = [0.0f64; 5];
            row[0] = center0 + rng.gen::<f64>() * 0.8 - 0.4;
            row[1] = center1 + rng.gen::<f64>() * 1.6 - 0.8;
            // Remaining attributes are uninformative noise.
            row[2] = rng.gen::<f64>() * 10.0;
            row[3] = rng.gen::<f64>() * 10.0;
            row[4] = rng.gen::<f64>() * 10.0;
            rows.push(row);
            genus.push(g);
        }
    }
    PlantTable { rows, genus }
}

/// Build the k-nearest-neighbor graph over the table rows using Euclidean
/// distance on the first two (expert-selected) attributes, connecting each row
/// to its `k` nearest neighbors if they are within `threshold`.
pub fn knn_graph(table: &PlantTable, k: usize, threshold: f64) -> CsrGraph {
    let n = table.rows.len();
    let mut builder = GraphBuilder::new();
    if n > 0 {
        builder.ensure_vertex(n - 1);
    }
    for i in 0..n {
        let mut distances: Vec<(f64, usize)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| {
                let dx = table.rows[i][0] - table.rows[j][0];
                let dy = table.rows[i][1] - table.rows[j][1];
                ((dx * dx + dy * dy).sqrt(), j)
            })
            .collect();
        distances.sort_by(|a, b| a.0.total_cmp(&b.0));
        for &(d, j) in distances.iter().take(k) {
            if d <= threshold {
                builder.add_edge(i as u32, j as u32);
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::traversal::connected_components;

    #[test]
    fn table_has_three_balanced_genera() {
        let t = generate_plant_table(40, 1);
        assert_eq!(t.rows.len(), 120);
        for g in 0..3 {
            assert_eq!(t.genus.iter().filter(|&&x| x == g).count(), 40);
        }
        assert_eq!(t.attribute(0).len(), 120);
    }

    #[test]
    fn attribute0_separates_genera_better_than_attribute1() {
        let t = generate_plant_table(60, 2);
        let separability = |attr: usize| -> f64 {
            // Ratio of between-genus variance to within-genus variance.
            let values = t.attribute(attr);
            let overall: f64 = values.iter().sum::<f64>() / values.len() as f64;
            let mut between = 0.0;
            let mut within = 0.0;
            for g in 0..3usize {
                let members: Vec<f64> = values
                    .iter()
                    .zip(&t.genus)
                    .filter(|(_, &gg)| gg == g)
                    .map(|(v, _)| *v)
                    .collect();
                let mean: f64 = members.iter().sum::<f64>() / members.len() as f64;
                between += members.len() as f64 * (mean - overall).powi(2);
                within += members.iter().map(|v| (v - mean).powi(2)).sum::<f64>();
            }
            between / within.max(1e-9)
        };
        assert!(
            separability(0) > 2.0 * separability(1),
            "attribute 0 ({:.2}) should separate much better than attribute 1 ({:.2})",
            separability(0),
            separability(1)
        );
    }

    #[test]
    fn knn_graph_keeps_blue_genus_separated() {
        let t = generate_plant_table(50, 3);
        let g = knn_graph(&t, 5, 1.5);
        assert_eq!(g.vertex_count(), 150);
        let cc = connected_components(&g);
        // Genus 2 (rows 100..150) must not connect to genus 0 (rows 0..50):
        // their attribute-0 centers are ~7 apart with threshold 1.5.
        for &v0 in &[0usize, 10, 25] {
            for &v2 in &[100usize, 120, 149] {
                assert!(!cc.same_component(
                    ugraph::VertexId::from_index(v0),
                    ugraph::VertexId::from_index(v2)
                ));
            }
        }
        // Genus 0 and genus 1 overlap, so most of their rows do connect.
        let mixed = (0..50).filter(|&v0| {
            (50..100).any(|v1| {
                cc.same_component(
                    ugraph::VertexId::from_index(v0),
                    ugraph::VertexId::from_index(v1),
                )
            })
        });
        assert!(mixed.count() > 25);
    }

    #[test]
    fn knn_respects_threshold() {
        let t = generate_plant_table(30, 4);
        let strict = knn_graph(&t, 5, 0.05);
        let loose = knn_graph(&t, 5, 5.0);
        assert!(strict.edge_count() < loose.edge_count());
    }
}
