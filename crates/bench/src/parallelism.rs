//! Shared `--threads` handling for the figure/table binaries.
//!
//! Every binary that runs a parallel-capable measure accepts
//! `--threads <serial|auto|N>`; the default is `auto` (use the machine),
//! which is safe for figure reproduction because the engine in
//! [`ugraph::par`] returns bit-identical results for every setting.

use ugraph::par::Parallelism;

/// Parse `--threads <serial|auto|N>` from an argument list, defaulting to
/// [`Parallelism::auto`].
///
/// Accepts both `--threads 4` and `--threads=4` (`0` and `1` mean serial).
/// An unrecognized value falls back to the default with a loud stderr
/// warning rather than aborting a long harness run, and the binaries print
/// the effective setting — a typo cannot silently change what a recorded
/// timing measured without leaving both lines in the log.
pub fn parallelism_from(args: &[String]) -> Parallelism {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(value) = arg.strip_prefix("--threads=") {
            return parse_or_warn(value);
        }
        if arg == "--threads" {
            return match iter.next() {
                Some(value) => parse_or_warn(value),
                None => parse_or_warn(""),
            };
        }
    }
    Parallelism::auto()
}

fn parse_or_warn(value: &str) -> Parallelism {
    Parallelism::parse(value).unwrap_or_else(|e| {
        eprintln!("[warn] {e}; using auto");
        Parallelism::auto()
    })
}

/// [`parallelism_from`] over [`std::env::args`] — what the binaries call.
pub fn parallelism_from_args() -> Parallelism {
    let args: Vec<String> = std::env::args().collect();
    parallelism_from(&args)
}

/// Parse `--parallelism <a,b,c>` — a comma-separated list of
/// [`Parallelism::parse`] settings (e.g. `serial,2,4x128`) — falling back to
/// `default` when the flag is absent.
///
/// Unlike [`parallelism_from`], a malformed entry is a hard `Err` carrying
/// the offending token: the scale ladder records baselines, and a typo'd
/// setting must abort the run rather than silently measure something else.
pub fn parallelism_list_from(args: &[String], default: &str) -> Result<Vec<Parallelism>, String> {
    let mut value = default.to_string();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(v) = arg.strip_prefix("--parallelism=") {
            value = v.to_string();
            break;
        }
        if arg == "--parallelism" {
            if let Some(v) = iter.next() {
                value = v.clone();
            }
            break;
        }
    }
    let settings: Vec<Parallelism> = value
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| Parallelism::parse(s).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    if settings.is_empty() {
        return Err(value);
    }
    Ok(settings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_both_flag_forms() {
        assert_eq!(parallelism_from(&argv(&["bin", "--threads", "4"])), Parallelism::Threads(4));
        assert_eq!(parallelism_from(&argv(&["bin", "--threads=2"])), Parallelism::Threads(2));
        assert_eq!(parallelism_from(&argv(&["bin", "--threads", "serial"])), Parallelism::Serial);
        assert_eq!(parallelism_from(&argv(&["bin", "--threads=1"])), Parallelism::Serial);
        assert_eq!(parallelism_from(&argv(&["bin", "--threads", "0"])), Parallelism::Serial);
    }

    #[test]
    fn parses_parallelism_lists_strictly() {
        let list =
            parallelism_list_from(&argv(&["bin", "--parallelism", "serial,2,4x128"]), "serial")
                .unwrap();
        assert_eq!(
            list,
            vec![
                Parallelism::Serial,
                Parallelism::Threads(2),
                Parallelism::Wide { threads: 4, width: 128 }
            ]
        );
        // Absent flag: the default string is parsed instead.
        assert_eq!(
            parallelism_list_from(&argv(&["bin"]), "serial,2").unwrap(),
            vec![Parallelism::Serial, Parallelism::Threads(2)]
        );
        // A typo is a hard error carrying the typed parse message (which
        // names the bad token), not a fallback.
        let err = parallelism_list_from(&argv(&["bin", "--parallelism=serial,bogus"]), "serial")
            .unwrap_err();
        assert!(err.contains("\"bogus\""), "error should name the bad token: {err}");
        assert!(err.contains("expected"), "error should list accepted forms: {err}");
        assert!(parallelism_list_from(&argv(&["bin", "--parallelism", ","]), "serial").is_err());
    }

    #[test]
    fn defaults_to_auto_when_absent_or_malformed() {
        let auto = Parallelism::auto();
        assert_eq!(parallelism_from(&argv(&["bin"])), auto);
        assert_eq!(parallelism_from(&argv(&["bin", "--large"])), auto);
        assert_eq!(parallelism_from(&argv(&["bin", "--threads", "bogus"])), auto);
        assert_eq!(parallelism_from(&argv(&["bin", "--threads"])), auto);
    }
}
