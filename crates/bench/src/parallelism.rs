//! Shared `--threads` handling for the figure/table binaries.
//!
//! Every binary that runs a parallel-capable measure accepts
//! `--threads <serial|auto|N>`; the default is `auto` (use the machine),
//! which is safe for figure reproduction because the engine in
//! [`ugraph::par`] returns bit-identical results for every setting.

use ugraph::par::Parallelism;

/// Parse `--threads <serial|auto|N>` from an argument list, defaulting to
/// [`Parallelism::auto`].
///
/// Accepts both `--threads 4` and `--threads=4` (`0` and `1` mean serial).
/// An unrecognized value falls back to the default with a loud stderr
/// warning rather than aborting a long harness run, and the binaries print
/// the effective setting — a typo cannot silently change what a recorded
/// timing measured without leaving both lines in the log.
pub fn parallelism_from(args: &[String]) -> Parallelism {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(value) = arg.strip_prefix("--threads=") {
            return parse_or_warn(value);
        }
        if arg == "--threads" {
            return match iter.next() {
                Some(value) => parse_or_warn(value),
                None => parse_or_warn(""),
            };
        }
    }
    Parallelism::auto()
}

fn parse_or_warn(value: &str) -> Parallelism {
    Parallelism::parse(value).unwrap_or_else(|| {
        eprintln!("[warn] unrecognized --threads value {value:?} (expected serial, auto or a thread count); using auto");
        Parallelism::auto()
    })
}

/// [`parallelism_from`] over [`std::env::args`] — what the binaries call.
pub fn parallelism_from_args() -> Parallelism {
    let args: Vec<String> = std::env::args().collect();
    parallelism_from(&args)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_both_flag_forms() {
        assert_eq!(parallelism_from(&argv(&["bin", "--threads", "4"])), Parallelism::Threads(4));
        assert_eq!(parallelism_from(&argv(&["bin", "--threads=2"])), Parallelism::Threads(2));
        assert_eq!(parallelism_from(&argv(&["bin", "--threads", "serial"])), Parallelism::Serial);
        assert_eq!(parallelism_from(&argv(&["bin", "--threads=1"])), Parallelism::Serial);
        assert_eq!(parallelism_from(&argv(&["bin", "--threads", "0"])), Parallelism::Serial);
    }

    #[test]
    fn defaults_to_auto_when_absent_or_malformed() {
        let auto = Parallelism::auto();
        assert_eq!(parallelism_from(&argv(&["bin"])), auto);
        assert_eq!(parallelism_from(&argv(&["bin", "--large"])), auto);
        assert_eq!(parallelism_from(&argv(&["bin", "--threads", "bogus"])), auto);
        assert_eq!(parallelism_from(&argv(&["bin", "--threads"])), auto);
    }
}
