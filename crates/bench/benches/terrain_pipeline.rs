//! Criterion bench: terrain layout, meshing and SVG serialization — the `tv`
//! column of Table II — plus the simplification ablation (how much the render
//! budget of Section II-E buys).

use bench::datasets::DatasetKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use measures::core_numbers;
use scalarfield::{build_super_tree, simplify_super_tree, vertex_scalar_tree, VertexScalarGraph};
use terrain::{
    build_terrain_mesh, highest_peaks, layout_super_tree, peaks_at_alpha, Exporter, LayoutConfig,
    MeshConfig, RenderScene, Svg,
};

fn bench_terrain_rendering(c: &mut Criterion) {
    let dataset = DatasetKind::GrQc.generate(0.5);
    let graph = dataset.graph;
    let cores = core_numbers(&graph);
    let scalar: Vec<f64> = cores.core.iter().map(|&c| c as f64).collect();
    let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
    let tree = build_super_tree(&vertex_scalar_tree(&sg));

    let mut group = c.benchmark_group("terrain_rendering");
    group.bench_function("layout_mesh_svg", |b| {
        b.iter(|| {
            let layout = layout_super_tree(&tree, &LayoutConfig::default());
            let mesh = build_terrain_mesh(&tree, &layout, &MeshConfig::default());
            let scene = RenderScene::new(&tree, &layout, &mesh);
            Svg::new(900.0, 700.0).export_string(&scene).unwrap().len()
        })
    });

    // Peak queries: the subtree-heavy interactive stage (highest peaks plus a
    // full α sweep), which the arena turns into contiguous range scans.
    let layout = layout_super_tree(&tree, &LayoutConfig::default());
    let mut levels: Vec<f64> = scalar.clone();
    levels.sort_by(f64::total_cmp);
    levels.dedup();
    group.bench_function("peak_queries", |b| {
        b.iter(|| {
            let mut touched = highest_peaks(&tree, &layout, 10).len();
            for &alpha in &levels {
                touched += peaks_at_alpha(&tree, &layout, alpha).len();
            }
            touched
        })
    });

    // Simplification ablation: rendering cost after discretizing to N levels.
    for levels in [64usize, 16, 4] {
        let simplified = simplify_super_tree(&tree, levels);
        group.bench_with_input(
            BenchmarkId::new("simplified_levels", levels),
            &simplified,
            |b, simplified| {
                b.iter(|| {
                    let layout = layout_super_tree(simplified, &LayoutConfig::default());
                    let mesh = build_terrain_mesh(simplified, &layout, &MeshConfig::default());
                    let scene = RenderScene::new(simplified, &layout, &mesh);
                    Svg::new(900.0, 700.0).export_string(&scene).unwrap().len()
                })
            },
        );
    }
    group.finish();
}

fn bench_unsimplified_scale(c: &mut Criterion) {
    // Allocation-churn spotlight: layout and meshing of a large super tree
    // that is *not* simplified down to the render budget, so per-node
    // temporaries dominate the cost. This is the tree shape the `10k` rung of
    // the scale ladder hits (see PERFORMANCE.md) — small enough to fit under
    // the simplification budget, large enough that the per-node work shows.
    let graph = ugraph::generators::rmat(13, 100_000, 42);
    let scores = measures::pagerank(&graph, &measures::PageRankConfig::default());
    let sg = VertexScalarGraph::new(&graph, &scores).unwrap();
    let tree = build_super_tree(&vertex_scalar_tree(&sg));

    let mut group = c.benchmark_group("terrain_unsimplified");
    group.bench_function("layout", |b| {
        b.iter(|| layout_super_tree(&tree, &LayoutConfig::default()).rects.len())
    });
    let layout = layout_super_tree(&tree, &LayoutConfig::default());
    group.bench_function("mesh", |b| {
        b.iter(|| build_terrain_mesh(&tree, &layout, &MeshConfig::default()).triangle_count())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_terrain_rendering, bench_unsimplified_scale
}
criterion_main!(benches);
