//! Criterion bench: the scalar-field substrates — K-Core and K-Truss
//! decompositions — whose outputs feed every terrain of Figures 1, 6 and 7.

use bench::datasets::DatasetKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use measures::{core_numbers, truss_numbers};

fn bench_decompositions(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompositions");
    for (kind, scale) in [(DatasetKind::GrQc, 0.5), (DatasetKind::WikiVote, 0.2)] {
        let dataset = kind.generate(scale);
        let graph = dataset.graph.clone();
        group.throughput(Throughput::Elements(graph.edge_count() as u64));
        group.bench_with_input(BenchmarkId::new("kcore", dataset.spec.name), &graph, |b, graph| {
            b.iter(|| core_numbers(graph).degeneracy)
        });
        group.bench_with_input(
            BenchmarkId::new("ktruss", dataset.spec.name),
            &graph,
            |b, graph| b.iter(|| truss_numbers(graph).max_truss),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_decompositions
}
criterion_main!(benches);
