//! Criterion bench: vertex scalar tree construction (Algorithm 1 + Algorithm 2)
//! across dataset analogs and sizes — the `tc` column of Table II for KC(v).

use bench::datasets::DatasetKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use measures::core_numbers;
use scalarfield::{build_super_tree, vertex_scalar_tree, VertexScalarGraph};

fn bench_vertex_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("vertex_scalar_tree");
    for (kind, scale) in
        [(DatasetKind::GrQc, 0.5), (DatasetKind::WikiVote, 0.25), (DatasetKind::Ppi, 0.5)]
    {
        let dataset = kind.generate(scale);
        let graph = dataset.graph.clone();
        let cores = core_numbers(&graph);
        let scalar: Vec<f64> = cores.core.iter().map(|&c| c as f64).collect();
        group.throughput(Throughput::Elements(graph.edge_count() as u64));
        group.bench_with_input(
            BenchmarkId::new("alg1_plus_alg2", dataset.spec.name),
            &(&graph, &scalar),
            |b, (graph, scalar)| {
                b.iter(|| {
                    let sg = VertexScalarGraph::new(graph, scalar).unwrap();
                    let tree = vertex_scalar_tree(&sg);
                    build_super_tree(&tree).node_count()
                })
            },
        );
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    // Scaling sweep on a single generator family: near-linear growth of tc
    // with |E| is the claim behind the complexity analysis of Section II-B.
    let mut group = c.benchmark_group("vertex_tree_scaling");
    group.sample_size(20);
    for nodes in [1_000usize, 4_000, 16_000] {
        let graph = ugraph::generators::barabasi_albert(nodes, 6, 42);
        let cores = core_numbers(&graph);
        let scalar: Vec<f64> = cores.core.iter().map(|&c| c as f64).collect();
        group.throughput(Throughput::Elements(graph.edge_count() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(nodes),
            &(&graph, &scalar),
            |b, (graph, scalar)| {
                b.iter(|| {
                    let sg = VertexScalarGraph::new(graph, scalar).unwrap();
                    build_super_tree(&vertex_scalar_tree(&sg)).node_count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_vertex_tree, bench_scaling);
criterion_main!(benches);
