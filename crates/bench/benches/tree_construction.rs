//! Criterion bench: vertex scalar tree construction (Algorithm 1 + Algorithm 2)
//! across dataset analogs and sizes — the `tc` column of Table II for KC(v) —
//! plus the arena-vs-naive subtree query comparison.

use bench::datasets::DatasetKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use measures::core_numbers;
use scalarfield::{build_super_tree, vertex_scalar_tree, SuperScalarTree, VertexScalarGraph};

fn bench_vertex_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("vertex_scalar_tree");
    for (kind, scale) in
        [(DatasetKind::GrQc, 0.5), (DatasetKind::WikiVote, 0.25), (DatasetKind::Ppi, 0.5)]
    {
        let dataset = kind.generate(scale);
        let graph = dataset.graph.clone();
        let cores = core_numbers(&graph);
        let scalar: Vec<f64> = cores.core.iter().map(|&c| c as f64).collect();
        group.throughput(Throughput::Elements(graph.edge_count() as u64));
        group.bench_with_input(
            BenchmarkId::new("alg1_plus_alg2", dataset.spec.name),
            &(&graph, &scalar),
            |b, (graph, scalar)| {
                b.iter(|| {
                    let sg = VertexScalarGraph::new(graph, scalar).unwrap();
                    let tree = vertex_scalar_tree(&sg);
                    build_super_tree(&tree).node_count()
                })
            },
        );
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    // Scaling sweep on a single generator family: near-linear growth of tc
    // with |E| is the claim behind the complexity analysis of Section II-B.
    let mut group = c.benchmark_group("vertex_tree_scaling");
    group.sample_size(20);
    for nodes in [1_000usize, 4_000, 16_000] {
        let graph = ugraph::generators::barabasi_albert(nodes, 6, 42);
        let cores = core_numbers(&graph);
        let scalar: Vec<f64> = cores.core.iter().map(|&c| c as f64).collect();
        group.throughput(Throughput::Elements(graph.edge_count() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(nodes),
            &(&graph, &scalar),
            |b, (graph, scalar)| {
                b.iter(|| {
                    let sg = VertexScalarGraph::new(graph, scalar).unwrap();
                    build_super_tree(&vertex_scalar_tree(&sg)).node_count()
                })
            },
        );
    }
    group.finish();
}

/// The old pointer-chasing query path, reconstructed on top of the arena
/// accessors: materialize per-node child `Vec`s, walk depths with an explicit
/// stack, `sort_by_key` every node by decreasing depth, then accumulate the
/// subtree member counts bottom-up. This is exactly what
/// `subtree_member_counts` cost before the flat-arena refactor and serves as
/// the baseline the arena path is measured against.
fn subtree_member_counts_naive(tree: &SuperScalarTree) -> Vec<usize> {
    let n = tree.node_count();
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (node, parent) in tree.parents().iter().enumerate() {
        if let Some(p) = parent {
            children[*p as usize].push(node as u32);
        }
    }
    let mut depth = vec![0usize; n];
    let mut stack: Vec<u32> = tree.roots().to_vec();
    while let Some(node) = stack.pop() {
        for &c in &children[node as usize] {
            depth[c as usize] = depth[node as usize] + 1;
            stack.push(c);
        }
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(depth[v as usize]));
    let mut counts: Vec<usize> = (0..n as u32).map(|v| tree.members(v).len()).collect();
    for node in order {
        if let Some(p) = tree.parent(node) {
            counts[p as usize] += counts[node as usize];
        }
    }
    counts
}

fn bench_subtree_queries(c: &mut Criterion) {
    // The query side of the refactor: subtree member counts on the bench
    // generator graphs, arena offsets vs the old sort-by-depth traversal.
    let mut group = c.benchmark_group("subtree_member_counts");
    let graphs = [
        ("barabasi_albert", ugraph::generators::barabasi_albert(8_000, 6, 42)),
        ("erdos_renyi", ugraph::generators::erdos_renyi(8_000, 0.002, 7)),
    ];
    for (name, graph) in graphs {
        // A high-cardinality field (degree with a deterministic tie-breaking
        // jitter) keeps the super tree large — K-Core fields collapse to a
        // handful of levels and would understate the query cost.
        let scalar: Vec<f64> =
            graph.vertices().map(|v| graph.degree(v) as f64 + (v.0 % 97) as f64 / 97.0).collect();
        let sg = VertexScalarGraph::new(&graph, &scalar).unwrap();
        let tree = build_super_tree(&vertex_scalar_tree(&sg));
        group.throughput(Throughput::Elements(tree.node_count() as u64));
        group.bench_with_input(BenchmarkId::new("arena", name), &tree, |b, tree| {
            b.iter(|| tree.subtree_member_counts().len())
        });
        group.bench_with_input(BenchmarkId::new("naive_sort", name), &tree, |b, tree| {
            b.iter(|| subtree_member_counts_naive(tree).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vertex_tree, bench_scaling, bench_subtree_queries);
criterion_main!(benches);
