//! Criterion bench: Algorithm 3 vs the naive dual-graph edge tree — the
//! `tc` vs `te` comparison of Table II for KT(e).

use bench::datasets::DatasetKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use measures::truss_numbers;
use scalarfield::{build_super_tree, edge_scalar_tree, edge_scalar_tree_naive, EdgeScalarGraph};

fn bench_edge_tree_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge_scalar_tree");
    for (kind, scale) in [(DatasetKind::GrQc, 0.35), (DatasetKind::WikiVote, 0.12)] {
        let dataset = kind.generate(scale);
        let graph = dataset.graph.clone();
        let truss = truss_numbers(&graph);
        let scalar: Vec<f64> = truss.truss.iter().map(|&t| t as f64).collect();
        group.throughput(Throughput::Elements(graph.edge_count() as u64));

        group.bench_with_input(
            BenchmarkId::new("alg3_optimized", dataset.spec.name),
            &(&graph, &scalar),
            |b, (graph, scalar)| {
                b.iter(|| {
                    let sg = EdgeScalarGraph::new(graph, scalar).unwrap();
                    build_super_tree(&edge_scalar_tree(&sg)).node_count()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("naive_dual_graph", dataset.spec.name),
            &(&graph, &scalar),
            |b, (graph, scalar)| {
                b.iter(|| {
                    let sg = EdgeScalarGraph::new(graph, scalar).unwrap();
                    build_super_tree(&edge_scalar_tree_naive(&sg)).node_count()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_edge_tree_methods
}
criterion_main!(benches);
