//! Criterion bench: serial vs threaded execution of the four hot measures on
//! 8k-vertex synthetic graphs — the speedup evidence for the `ugraph::par`
//! engine.
//!
//! Every measure is run at `serial` and `threads(2/4/8)`; because the engine
//! guarantees bit-identical results across settings (see `ugraph::par`), any
//! timing difference is pure scheduling. On a multi-core machine `threads(4)`
//! should beat `serial` clearly on the BFS-heavy measures (betweenness,
//! closeness); on a single-core container the threaded runs only measure the
//! (small) chunking + spawn overhead. The host's core count is printed so
//! recorded numbers can be read in context.

use bench::datasets::DatasetKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use measures::{
    betweenness_centrality_sampled_with, betweenness_centrality_with, closeness_centrality_with,
    pagerank_with, vertex_triangle_counts_with, PageRankConfig, Parallelism,
};
use ugraph::generators::barabasi_albert;

const THREAD_SETTINGS: [Parallelism; 4] = [
    Parallelism::Serial,
    Parallelism::Threads(2),
    Parallelism::Threads(4),
    Parallelism::Threads(8),
];

fn bench_parallel_measures(c: &mut Criterion) {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!("[parallel_measures] host exposes {cores} core(s)");

    // The 8k-vertex synthetic graphs: a hub-heavy preferential-attachment
    // graph (the shape Brandes spends its time on) and the Astro analog.
    let ba = barabasi_albert(8_000, 4, 17);
    eprintln!(
        "[parallel_measures] barabasi_albert(8000, 4): {} nodes, {} edges",
        ba.vertex_count(),
        ba.edge_count()
    );
    let astro = DatasetKind::Astro.generate(0.45).graph;
    eprintln!(
        "[parallel_measures] astro(0.45): {} nodes, {} edges",
        astro.vertex_count(),
        astro.edge_count()
    );

    // Exact Brandes is the paper's bottleneck (Figure 10 / Task 3 need it on
    // every dataset) — the headline comparison.
    let mut group = c.benchmark_group("betweenness_exact_8k");
    group.sample_size(2);
    for p in THREAD_SETTINGS {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| betweenness_centrality_with(&ba, p).len())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("betweenness_sampled256_8k");
    group.sample_size(5);
    for p in THREAD_SETTINGS {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| betweenness_centrality_sampled_with(&ba, 256, 7, p).len())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("closeness_8k");
    group.sample_size(2);
    for p in THREAD_SETTINGS {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| closeness_centrality_with(&astro, p).len())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("pagerank_8k");
    group.sample_size(10);
    let config = PageRankConfig::default();
    for p in THREAD_SETTINGS {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| pagerank_with(&astro, &config, p).len())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("triangle_counts_8k");
    group.sample_size(10);
    for p in THREAD_SETTINGS {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| vertex_triangle_counts_with(&astro, p).len())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parallel_measures
}
criterion_main!(benches);
