//! Criterion bench: Local/Global Correlation Index computation (Section II-F,
//! the analysis behind Figure 10) and the exact-vs-sampled betweenness
//! ablation that feeds it.

use bench::datasets::DatasetKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use measures::{betweenness_centrality, betweenness_centrality_sampled, degrees};
use scalarfield::{global_correlation_index, local_correlation_index};

fn bench_correlation(c: &mut Criterion) {
    let dataset = DatasetKind::Astro.generate(0.08);
    let graph = dataset.graph;
    let degree_field: Vec<f64> = degrees(&graph).iter().map(|&d| d as f64).collect();
    let betweenness = betweenness_centrality_sampled(&graph, 64, 3);

    let mut group = c.benchmark_group("correlation_index");
    group.bench_function("lci_1hop", |b| {
        b.iter(|| local_correlation_index(&graph, &degree_field, &betweenness, 1).unwrap().len())
    });
    group.bench_function("gci_1hop", |b| {
        b.iter(|| global_correlation_index(&graph, &degree_field, &betweenness, 1).unwrap())
    });
    group.finish();

    let mut group = c.benchmark_group("betweenness");
    group.sample_size(10);
    group.bench_function("exact", |b| b.iter(|| betweenness_centrality(&graph).len()));
    for samples in [32usize, 128] {
        group.bench_with_input(BenchmarkId::new("sampled", samples), &samples, |b, &samples| {
            b.iter(|| betweenness_centrality_sampled(&graph, samples, 7).len())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_correlation
}
criterion_main!(benches);
