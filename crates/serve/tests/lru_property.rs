//! Property test: the O(1) linked-list [`LruCache`] must behave exactly
//! like the obviously-correct model — a plain `Vec` kept in
//! most-recently-used order with both bounds enforced by scanning. Random
//! interleavings of `get`/`insert` over a small key space (so collisions,
//! replacements and evictions all actually happen) must agree on recency
//! order, eviction choice, capacity and byte bounds, and on every counter
//! the server's `/stats` endpoint reports.

use std::sync::Arc;

use proptest::prelude::*;
use serve::cache::{CacheStats, CachedArtifact, LruCache};

/// The trivially-correct reference implementation.
struct ModelCache {
    capacity: usize,
    max_bytes: usize,
    /// `(key, size)` in most-recently-used-first order.
    entries: Vec<(String, usize)>,
    stats: CacheStats,
}

impl ModelCache {
    fn new(capacity: usize, max_bytes: usize) -> Self {
        let capacity = capacity.max(1);
        ModelCache {
            capacity,
            max_bytes,
            entries: Vec::new(),
            stats: CacheStats { capacity, max_bytes, ..CacheStats::default() },
        }
    }

    fn bytes(&self) -> usize {
        self.entries.iter().map(|(_, size)| size).sum()
    }

    fn get(&mut self, key: &str) -> bool {
        match self.entries.iter().position(|(k, _)| k == key) {
            Some(idx) => {
                self.stats.hits += 1;
                let entry = self.entries.remove(idx);
                self.entries.insert(0, entry);
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    fn insert(&mut self, key: &str, size: usize) {
        if size > self.max_bytes {
            self.stats.uncacheable += 1;
            return;
        }
        self.stats.insertions += 1;
        if let Some(idx) = self.entries.iter().position(|(k, _)| k == key) {
            self.entries.remove(idx);
        }
        self.entries.insert(0, (key.to_string(), size));
        while self.entries.len() > self.capacity || self.bytes() > self.max_bytes {
            if self.entries.len() == 1 {
                break;
            }
            self.entries.pop();
            self.stats.evictions += 1;
        }
    }

    fn finalized_stats(&self) -> CacheStats {
        CacheStats { entries: self.entries.len(), bytes: self.bytes(), ..self.stats }
    }
}

/// One scripted cache operation.
#[derive(Clone, Debug)]
enum Op {
    Get(u8),
    Insert(u8, usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // (selector, key, size): selector 0 reads, anything else writes — a
    // read-heavy mix would starve the eviction paths, so writes dominate.
    ((0u8..3), (0u8..12), (0usize..220)).prop_map(|(selector, key, size)| {
        if selector == 0 {
            Op::Get(key)
        } else {
            Op::Insert(key, size)
        }
    })
}

fn artifact(key: u8, size: usize) -> Arc<CachedArtifact> {
    Arc::new(CachedArtifact {
        bytes: vec![key; size],
        etag: format!("\"{key:016x}\""),
        content_type: "image/svg+xml",
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lru_matches_the_model_oracle(
        capacity in 1usize..8,
        max_bytes in 1usize..600,
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let mut real = LruCache::new(capacity, max_bytes);
        let mut model = ModelCache::new(capacity, max_bytes);

        for (step, op) in ops.iter().enumerate() {
            match op {
                Op::Get(key) => {
                    let key = format!("k{key}");
                    let real_hit = real.get(&key).is_some();
                    let model_hit = model.get(&key);
                    prop_assert_eq!(real_hit, model_hit, "step {}: get({}) disagreement", step, key);
                }
                Op::Insert(key, size) => {
                    let name = format!("k{key}");
                    real.insert(name.clone(), artifact(*key, *size));
                    model.insert(&name, *size);
                }
            }
            // Full-state agreement after every step, not just at the end:
            // recency order pins both the eviction *choice* and promotion.
            let model_keys: Vec<String> =
                model.entries.iter().map(|(k, _)| k.clone()).collect();
            prop_assert_eq!(
                real.keys_most_recent_first(),
                model_keys,
                "step {}: recency order diverged",
                step
            );
            prop_assert_eq!(real.len(), model.entries.len());
            prop_assert_eq!(real.bytes(), model.bytes());
            // The bounds are invariants, not just goals.
            prop_assert!(real.len() <= capacity.max(1));
            prop_assert!(real.bytes() <= max_bytes);
        }

        // Counter-for-counter agreement — these are the numbers /stats serves.
        prop_assert_eq!(real.stats(), model.finalized_stats());
    }

    #[test]
    fn cached_values_are_returned_intact(
        inserts in proptest::collection::vec(((0u8..6), (1usize..50)), 1..40),
    ) {
        // Generous bounds: nothing evicts, so every insert's latest value
        // must be readable back unchanged.
        let mut cache = LruCache::new(64, 1 << 20);
        for (key, size) in &inserts {
            cache.insert(format!("k{key}"), artifact(*key, *size));
        }
        let mut latest: std::collections::HashMap<u8, usize> = Default::default();
        for (key, size) in &inserts {
            latest.insert(*key, *size);
        }
        for (key, size) in latest {
            let got = cache.get(&format!("k{key}")).expect("nothing evicted");
            prop_assert_eq!(got.bytes.len(), size);
            prop_assert!(got.bytes.iter().all(|&b| b == key));
        }
    }
}
