//! Concurrent coherence: many client threads hammering one server must get
//! artifacts *byte-identical* to a fresh, serial, single-session
//! [`TerrainPipeline`] render of the same graph — whether a response came
//! from a cold render, a cache hit, or raced another thread's identical
//! request. This is the server-side face of the pipeline's determinism
//! contract, and it is what justifies the cache returning stored bytes at
//! all.

use std::collections::HashMap;
use std::sync::Arc;

use graph_terrain::{Measure, SharedGraph, SvgSize, TerrainPipeline};
use serve::client;
use serve::state::{AppState, ServerConfig};
use serve::Server;
use terrain::exporter_by_name;
use ugraph::{CsrGraph, GraphBuilder};

/// Number of concurrent client threads — the ISSUE floor is 8.
const CLIENT_THREADS: usize = 10;
/// Requests each client issues.
const REQUESTS_PER_CLIENT: usize = 12;

/// A graph with actual structure: two dense cliques bridged by a path,
/// plus a sprinkling of pendant vertices.
fn test_graph() -> CsrGraph {
    let mut builder = GraphBuilder::new();
    for u in 0..6u32 {
        for v in (u + 1)..6u32 {
            builder.add_edge(u, v);
        }
    }
    for u in 6..10u32 {
        for v in (u + 1)..10u32 {
            builder.add_edge(u, v);
        }
    }
    builder.extend_edges([(5u32, 10u32), (10, 11), (11, 6), (0, 12), (12, 13), (7, 14)]);
    builder.build()
}

/// A fresh serial render, started from scratch — the reference bytes.
fn direct_render(graph: &SharedGraph, measure: Measure, exporter_name: &str) -> Vec<u8> {
    let mut session = TerrainPipeline::from_shared(graph.clone(), measure);
    session.set_svg_size(SvgSize::default());
    let exporter = exporter_by_name(exporter_name).expect("known backend");
    let mut bytes = Vec::new();
    // The deterministic variant, as the server uses: the scene carries no
    // wall-clock timings, so two independent renders agree byte-for-byte.
    session.render_deterministic_to(exporter.as_ref(), &mut bytes).expect("reference render");
    bytes
}

#[test]
fn concurrent_clients_get_bytes_identical_to_a_fresh_serial_pipeline() {
    let graph = SharedGraph::new(test_graph());
    let state = Arc::new(AppState::new(ServerConfig { workers: 8, ..ServerConfig::default() }));
    state.insert_graph(Some("coh".into()), graph.clone()).unwrap();
    let server = Server::bind_with_state("127.0.0.1:0", state).expect("bind");
    let addr = server.addr();

    // The reference artifacts, rendered serially outside the server.
    let cases: Vec<(String, Measure, &str)> = vec![
        ("/graphs/coh/terrain?measure=kcore&format=svg".into(), Measure::KCore, "svg"),
        ("/graphs/coh/terrain?measure=degree&format=svg".into(), Measure::Degree, "svg"),
        ("/graphs/coh/terrain?measure=kcore&format=json".into(), Measure::KCore, "json"),
        ("/graphs/coh/terrain?measure=ktruss&format=obj".into(), Measure::KTruss, "obj"),
    ];
    let reference: HashMap<String, Vec<u8>> = cases
        .iter()
        .map(|(target, measure, backend)| {
            (target.clone(), direct_render(&graph, measure.clone(), backend))
        })
        .collect();
    let reference = Arc::new(reference);
    let targets: Arc<Vec<String>> =
        Arc::new(cases.iter().map(|(target, _, _)| target.clone()).collect());

    // Every thread cycles through all targets at a different phase, so the
    // same artifact is requested cold, warm, and concurrently-cold.
    let threads: Vec<_> = (0..CLIENT_THREADS)
        .map(|thread_idx| {
            let reference = Arc::clone(&reference);
            let targets = Arc::clone(&targets);
            std::thread::spawn(move || {
                let mut etags: HashMap<String, String> = HashMap::new();
                for i in 0..REQUESTS_PER_CLIENT {
                    let target = &targets[(thread_idx + i) % targets.len()];
                    let response = client::get(addr, target).expect("request");
                    assert_eq!(response.status, 200, "{target}");
                    assert_eq!(
                        &response.body,
                        reference.get(target).expect("reference exists"),
                        "thread {thread_idx} request {i}: served bytes for {target} \
                         differ from the fresh serial pipeline render"
                    );
                    // The ETag must be identical on every response for a
                    // target, hit or miss.
                    let etag = response.header("etag").expect("etag present").to_string();
                    match etags.get(target) {
                        Some(previous) => assert_eq!(previous, &etag, "{target}"),
                        None => {
                            etags.insert(target.clone(), etag);
                        }
                    }
                }
                etags
            })
        })
        .collect();

    // All threads must agree on every target's ETag, too.
    let mut global_etags: HashMap<String, String> = HashMap::new();
    for thread in threads {
        for (target, etag) in thread.join().expect("client thread must not panic") {
            match global_etags.get(&target) {
                Some(previous) => assert_eq!(previous, &etag, "{target}"),
                None => {
                    global_etags.insert(target, etag);
                }
            }
        }
    }
    assert_eq!(global_etags.len(), targets.len());

    // The cache must have seen real concurrency: far more lookups than
    // entries, with every miss but the cold ones converted to hits.
    let stats = server.state().cache.lock().unwrap().stats();
    assert!(stats.hits > 0, "the run must produce cache hits");
    assert_eq!(
        stats.hits + stats.misses,
        (CLIENT_THREADS * REQUESTS_PER_CLIENT) as u64,
        "every request is exactly one cache lookup"
    );
    server.shutdown();
}

#[test]
fn hit_and_miss_responses_are_byte_and_etag_identical() {
    let state = Arc::new(AppState::new(ServerConfig::default()));
    state.insert_graph(Some("coh".into()), SharedGraph::new(test_graph())).unwrap();
    let server = Server::bind_with_state("127.0.0.1:0", state).expect("bind");
    let addr = server.addr();

    let target = "/graphs/coh/terrain?measure=kcore&format=svg";
    let miss = client::get(addr, target).unwrap();
    let hit = client::get(addr, target).unwrap();
    assert_eq!(miss.header("x-cache"), Some("miss"));
    assert_eq!(hit.header("x-cache"), Some("hit"));
    assert_eq!(miss.body, hit.body, "hit must serve exactly the missed bytes");
    assert_eq!(miss.header("etag"), hit.header("etag"));
    assert_eq!(miss.header("content-type"), hit.header("content-type"));

    // And the conditional request closes the loop at zero bytes.
    let etag = miss.header("etag").unwrap();
    let not_modified = client::get_with_headers(addr, target, &[("If-None-Match", etag)]).unwrap();
    assert_eq!(not_modified.status, 304);
    assert!(not_modified.body.is_empty());
    assert_eq!(not_modified.header("etag"), Some(etag));
    server.shutdown();
}

#[test]
fn mapped_and_owned_uploads_serve_identical_artifacts() {
    // The same graph uploaded two ways — as an edge list (parsed, owned)
    // and as a v3 snapshot (zero-copy mapped) — must serve byte-identical
    // terrain.
    let graph = test_graph();
    let snapshot = ugraph::io::encode_binary_v3(&graph, None).expect("encode v3");
    let mut edge_list = String::new();
    for edge in graph.edges() {
        edge_list.push_str(&format!("{} {}\n", edge.u, edge.v));
    }

    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.addr();
    let up_mapped = client::post(addr, "/graphs?id=mapped", &snapshot).unwrap();
    assert_eq!(up_mapped.status, 201, "{}", up_mapped.body_utf8());
    assert!(
        up_mapped.body_utf8().contains("\"storage\":\"mapped\""),
        "snapshot upload must register zero-copy: {}",
        up_mapped.body_utf8()
    );
    let up_owned =
        client::post(addr, "/graphs?id=owned&format=edgelist", edge_list.as_bytes()).unwrap();
    assert_eq!(up_owned.status, 201, "{}", up_owned.body_utf8());

    let mapped = client::get(addr, "/graphs/mapped/terrain?measure=kcore").unwrap();
    let owned = client::get(addr, "/graphs/owned/terrain?measure=kcore").unwrap();
    assert_eq!(mapped.status, 200);
    assert_eq!(owned.status, 200);
    assert_eq!(mapped.body, owned.body, "storage backend must be byte-invisible");
    server.shutdown();
}
