//! In-process route tests: drive [`serve::routes::handle`] directly with
//! constructed [`Request`]s — no sockets — to pin the API contract: status
//! codes, the structured error bodies (including the typed
//! `Parallelism::parse` / `exporter_by_name` 400 mappings), the registry
//! protocol, and the cache headers.

use std::sync::Arc;

use graph_terrain::SharedGraph;
use serve::http::{parse_query, Method, Request};
use serve::routes;
use serve::state::{AppState, ServerConfig};
use ugraph::GraphBuilder;

fn state_with_graph() -> Arc<AppState> {
    let state = Arc::new(AppState::new(ServerConfig::default()));
    let mut builder = GraphBuilder::new();
    for u in 0..5u32 {
        for v in (u + 1)..5u32 {
            builder.add_edge(u, v);
        }
    }
    builder.extend_edges([(4u32, 5u32), (5, 6)]);
    state.insert_graph(Some("g".into()), SharedGraph::new(builder.build())).unwrap();
    state
}

fn get(target: &str) -> Request {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };
    Request { method: Method::Get, path, query, headers: Vec::new(), body: Vec::new() }
}

fn post(target: &str, body: Vec<u8>) -> Request {
    Request { method: Method::Post, body, ..get(target) }
}

fn delete(target: &str) -> Request {
    Request { method: Method::Delete, ..get(target) }
}

fn body_json(response: &serve::Response) -> serde_json::Value {
    serde_json::from_str(&String::from_utf8_lossy(&response.body))
        .expect("response body must be JSON")
}

#[test]
fn unknown_routes_and_graphs_are_structured_404s() {
    let state = state_with_graph();
    for target in ["/nope", "/graphs/missing/terrain", "/graphs/g/nope", "/graphs/missing"] {
        let response = routes::handle(&state, &get(target));
        assert_eq!(response.status, 404, "{target}");
        let doc = body_json(&response);
        assert_eq!(
            doc.get("error").and_then(|e| e.get("code")).and_then(|c| c.as_str()),
            Some("not_found"),
            "{target}"
        );
    }
}

#[test]
fn bad_threads_param_is_the_typed_parallelism_400() {
    let state = state_with_graph();
    let response = routes::handle(&state, &get("/graphs/g/terrain?threads=8x0"));
    assert_eq!(response.status, 400);
    let doc = body_json(&response);
    let error = doc.get("error").expect("error object");
    assert_eq!(error.get("code").and_then(|c| c.as_str()), Some("invalid_parameter"));
    assert_eq!(error.get("param").and_then(|p| p.as_str()), Some("threads"));
    let message = error.get("message").and_then(|m| m.as_str()).unwrap();
    assert!(message.contains("8x0"), "{message}");
    assert!(message.contains("nonzero width"), "{message}");
}

#[test]
fn bad_format_param_is_the_typed_exporter_400() {
    let state = state_with_graph();
    let response = routes::handle(&state, &get("/graphs/g/terrain?format=gif"));
    assert_eq!(response.status, 400);
    let error = body_json(&response);
    let error = error.get("error").expect("error object");
    assert_eq!(error.get("param").and_then(|p| p.as_str()), Some("format"));
    let message = error.get("message").and_then(|m| m.as_str()).unwrap();
    assert!(message.contains("gif"), "{message}");
    assert!(message.contains("treemap"), "should list backends: {message}");
}

#[test]
fn invalid_parameters_never_panic_and_name_the_param() {
    let state = state_with_graph();
    let cases = [
        ("/graphs/g/terrain?measure=bogus", "measure"),
        ("/graphs/g/terrain?width=fat", "width"),
        ("/graphs/g/terrain?levels=zero", "levels"),
        ("/graphs/g/terrain?budget=-3", "budget"),
        ("/graphs/g/terrain?color=plaid", "color"),
        ("/graphs/g/terrain?measure=edge-triangles&color=degree", "color"),
        ("/graphs/g/peaks?alpha=tall", "alpha"),
        ("/graphs/g/peaks?count=-1", "count"),
    ];
    for (target, param) in cases {
        let response = routes::handle(&state, &get(target));
        assert_eq!(response.status, 400, "{target}");
        let doc = body_json(&response);
        assert_eq!(
            doc.get("error").and_then(|e| e.get("param")).and_then(|p| p.as_str()),
            Some(param),
            "{target}"
        );
    }
}

#[test]
fn threads_param_changes_nothing_about_the_artifact_or_cache_key() {
    let state = state_with_graph();
    let serial = routes::handle(&state, &get("/graphs/g/terrain?threads=serial"));
    assert_eq!(serial.status, 200);
    assert_eq!(serial.header_value("x-cache"), Some("miss"));
    // Different thread budget, same everything else: must be a *hit* (the
    // key excludes parallelism) with identical bytes.
    let threaded = routes::handle(&state, &get("/graphs/g/terrain?threads=2x64"));
    assert_eq!(threaded.status, 200);
    assert_eq!(threaded.header_value("x-cache"), Some("hit"));
    assert_eq!(serial.body, threaded.body);
    assert_eq!(serial.header_value("etag"), threaded.header_value("etag"));
}

#[test]
fn distinct_render_parameters_get_distinct_cache_entries_and_etags() {
    let state = state_with_graph();
    let default = routes::handle(&state, &get("/graphs/g/terrain"));
    let resized = routes::handle(&state, &get("/graphs/g/terrain?width=640&height=480"));
    let recolored = routes::handle(&state, &get("/graphs/g/terrain?color=degree"));
    assert_eq!(default.status, 200);
    assert_eq!(resized.status, 200);
    assert_eq!(recolored.status, 200);
    for response in [&resized, &recolored] {
        assert_eq!(response.header_value("x-cache"), Some("miss"));
        assert_ne!(response.header_value("etag"), default.header_value("etag"));
    }
    // A different size provably changes the bytes; a different palette may
    // coincide on a tiny graph, so only the key separation is asserted.
    assert_ne!(resized.body, default.body);
    assert_eq!(state.cache.lock().unwrap().len(), 3);
}

#[test]
fn if_none_match_returns_304_without_rendering() {
    let state = state_with_graph();
    let first = routes::handle(&state, &get("/graphs/g/terrain"));
    let etag = first.header_value("etag").unwrap().to_string();
    let mut conditional = get("/graphs/g/terrain");
    conditional.headers.push(("if-none-match".into(), etag.clone()));
    let response = routes::handle(&state, &conditional);
    assert_eq!(response.status, 304);
    assert_eq!(response.header_value("etag"), Some(etag.as_str()));
    // The 304 never touched the cache: exactly one lookup (the first
    // render's miss) is on the books.
    let stats = state.cache.lock().unwrap().stats();
    assert_eq!(stats.hits + stats.misses, 1);
}

#[test]
fn upload_registers_lists_describes_and_conflicts() {
    let state = Arc::new(AppState::new(ServerConfig::default()));
    let edgelist = b"0 1\n1 2\n2 0\n".to_vec();

    let created = routes::handle(&state, &post("/graphs?id=tri", edgelist.clone()));
    assert_eq!(created.status, 201, "{}", String::from_utf8_lossy(&created.body));
    assert_eq!(created.header_value("location"), Some("/graphs/tri"));
    let doc = body_json(&created);
    assert_eq!(doc.get("vertices").and_then(|v| v.as_u64()), Some(3));
    assert_eq!(doc.get("edges").and_then(|v| v.as_u64()), Some(3));
    assert_eq!(doc.get("storage").and_then(|v| v.as_str()), Some("owned"));

    // Same id again: 409, registry unchanged.
    let conflict = routes::handle(&state, &post("/graphs?id=tri", edgelist.clone()));
    assert_eq!(conflict.status, 409);

    // Auto-id upload, then list both.
    let auto = routes::handle(&state, &post("/graphs", edgelist));
    assert_eq!(auto.status, 201);
    let list = routes::handle(&state, &get("/graphs"));
    let listed = body_json(&list);
    assert_eq!(listed.get("graphs").and_then(|g| g.as_array()).map(|a| a.len()), Some(2));

    // Garbage uploads are 400s, not panics.
    let garbage = routes::handle(&state, &post("/graphs", b"not a graph \xff".to_vec()));
    assert_eq!(garbage.status, 400);
    let empty = routes::handle(&state, &post("/graphs", Vec::new()));
    assert_eq!(empty.status, 400);
}

#[test]
fn peaks_returns_the_clique_and_stats_reflects_traffic() {
    let state = state_with_graph();
    let peaks = routes::handle(&state, &get("/graphs/g/peaks?count=2"));
    assert_eq!(peaks.status, 200);
    let doc = body_json(&peaks);
    let list = doc.get("peaks").and_then(|p| p.as_array()).expect("peaks array");
    assert!(!list.is_empty());
    let first = &list[0];
    // The K5 dominates the K-Core terrain: the top peak has summit 4.
    assert_eq!(first.get("summit_height").and_then(|v| v.as_f64()), Some(4.0));
    assert!(first.get("member_count").and_then(|v| v.as_u64()).unwrap() >= 5);
    assert!(first.get("footprint").is_some());

    let stats = routes::handle(&state, &get("/stats"));
    assert_eq!(stats.status, 200);
    let doc = body_json(&stats);
    assert_eq!(doc.get("graphs").and_then(|v| v.as_u64()), Some(1));
    let cache = doc.get("cache").expect("cache object");
    assert_eq!(cache.get("misses").and_then(|v| v.as_u64()), Some(1));
    let totals = doc.get("stage_seconds").expect("stage_seconds object");
    assert_eq!(totals.get("renders").and_then(|v| v.as_u64()), Some(1));
}

#[test]
fn delete_unregisters_the_graph_and_evicts_its_artifacts() {
    let state = state_with_graph();
    assert_eq!(routes::handle(&state, &get("/graphs/g/terrain")).status, 200);
    assert_eq!(routes::handle(&state, &get("/graphs/g/peaks")).status, 200);
    assert_eq!(state.cache.lock().unwrap().len(), 2);

    let gone = routes::handle(&state, &delete("/graphs/missing"));
    assert_eq!(gone.status, 404);

    let deleted = routes::handle(&state, &delete("/graphs/g"));
    assert_eq!(deleted.status, 200, "{}", String::from_utf8_lossy(&deleted.body));
    let doc = body_json(&deleted);
    assert_eq!(doc.get("deleted").and_then(|v| v.as_str()), Some("g"));
    assert_eq!(doc.get("evicted_artifacts").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(state.cache.lock().unwrap().len(), 0, "the id's artifacts must go");

    assert_eq!(routes::handle(&state, &get("/graphs/g")).status, 404);
    assert_eq!(routes::handle(&state, &delete("/graphs/g")).status, 404, "second delete");
}

#[test]
fn structural_deltas_mutate_the_graph_and_change_the_etag() {
    let state = state_with_graph();
    let before = routes::handle(&state, &get("/graphs/g/terrain"));
    assert_eq!(before.status, 200);

    // Grow the graph: a new edge into fresh vertex 7 plus a redundant one.
    let applied = routes::handle(&state, &post("/graphs/g/deltas", b"6 7\n0 1\n".to_vec()));
    assert_eq!(applied.status, 200, "{}", String::from_utf8_lossy(&applied.body));
    let doc = body_json(&applied);
    assert_eq!(doc.get("structural").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(doc.get("inserted").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(doc.get("redundant_inserts").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(doc.get("evicted_artifacts").and_then(|v| v.as_u64()), Some(1));
    let graph = doc.get("graph").expect("graph facts");
    assert_eq!(graph.get("vertices").and_then(|v| v.as_u64()), Some(8));
    let costs = doc.get("measure_costs").expect("measure cost table");
    assert_eq!(costs.get("degree").and_then(|v| v.as_str()), Some("local"));
    assert_eq!(costs.get("kcore").and_then(|v| v.as_str()), Some("dirty-region"));
    assert_eq!(costs.get("pagerank").and_then(|v| v.as_str()), Some("full"));

    // The registry now serves the mutated graph, and a re-render is a
    // fresh artifact with a different ETag (the key embeds only the id,
    // but the old entry was evicted so the bytes are recomputed).
    let info = body_json(&routes::handle(&state, &get("/graphs/g")));
    assert_eq!(info.get("vertices").and_then(|v| v.as_u64()), Some(8));
    assert_eq!(info.get("generation").and_then(|v| v.as_u64()), Some(1));
    let after = routes::handle(&state, &get("/graphs/g/terrain"));
    assert_eq!(after.header_value("x-cache"), Some("miss"), "stale bytes must not be served");
    assert_ne!(after.body, before.body);
    assert_ne!(
        after.header_value("etag"),
        before.header_value("etag"),
        "the generation is in the key, so the key-derived ETag must change"
    );
    // A conditional request with the pre-delta ETag must re-render, not 304.
    let mut conditional = get("/graphs/g/terrain");
    conditional
        .headers
        .push(("if-none-match".into(), before.header_value("etag").unwrap().to_string()));
    assert_eq!(routes::handle(&state, &conditional).status, 200);

    // The mutated graph renders byte-identically to a direct upload of the
    // same final edge list under a fresh id modulo the id-dependent key.
    let mut final_edges = Vec::new();
    let entry = state.graph("g").unwrap();
    let storage = entry.graph.storage();
    for e in storage.edges() {
        final_edges.extend_from_slice(format!("{} {}\n", e.u, e.v).as_bytes());
    }
    let fresh = routes::handle(&state, &post("/graphs?id=rebuilt", final_edges));
    assert_eq!(fresh.status, 201);
    let direct = routes::handle(&state, &get("/graphs/rebuilt/terrain"));
    assert_eq!(direct.body, after.body, "incremental and from-scratch artifacts must agree");
}

#[test]
fn noop_deltas_leave_the_graph_cache_and_etags_alone() {
    let state = state_with_graph();
    let before = routes::handle(&state, &get("/graphs/g/terrain"));
    let etag = before.header_value("etag").unwrap().to_string();

    // A redundant insert, an absent delete, and a reweight: no structure.
    // The absent delete names vertices inside the existing range — a batch
    // mentioning a fresh vertex id grows the graph, which *is* structural.
    let redundant = routes::handle(&state, &post("/graphs/g/deltas", b"0 1\n".to_vec()));
    let absent = routes::handle(&state, &post("/graphs/g/deltas?op=delete", b"0 5\n".to_vec()));
    let reweight = routes::handle(&state, &post("/graphs/g/deltas?op=reweight", b"0 1\n".to_vec()));
    for (response, field) in
        [(&redundant, "redundant_inserts"), (&absent, "absent_deletes"), (&reweight, "reweights")]
    {
        assert_eq!(response.status, 200, "{}", String::from_utf8_lossy(&response.body));
        let doc = body_json(response);
        assert_eq!(doc.get("structural").and_then(|v| v.as_bool()), Some(false), "{field}");
        assert_eq!(doc.get("evicted_artifacts").and_then(|v| v.as_u64()), Some(0), "{field}");
        assert_eq!(doc.get(field).and_then(|v| v.as_u64()), Some(1), "{field}");
    }
    let cached = routes::handle(&state, &get("/graphs/g/terrain"));
    assert_eq!(cached.header_value("x-cache"), Some("hit"), "no-op deltas must not evict");
    assert_eq!(cached.header_value("etag"), Some(etag.as_str()));
}

#[test]
fn delta_parameter_errors_are_structured_400s_and_404s() {
    let state = state_with_graph();
    let missing = routes::handle(&state, &post("/graphs/nope/deltas", b"0 1\n".to_vec()));
    assert_eq!(missing.status, 404);

    let empty = routes::handle(&state, &post("/graphs/g/deltas", Vec::new()));
    assert_eq!(empty.status, 400);
    assert_eq!(
        body_json(&empty).get("error").and_then(|e| e.get("code")).and_then(|c| c.as_str()),
        Some("empty_body")
    );

    let bad_op = routes::handle(&state, &post("/graphs/g/deltas?op=upsert", b"0 1\n".to_vec()));
    assert_eq!(bad_op.status, 400);
    let doc = body_json(&bad_op);
    let error = doc.get("error").expect("error object");
    assert_eq!(error.get("param").and_then(|p| p.as_str()), Some("op"));
    assert!(error.get("message").and_then(|m| m.as_str()).unwrap().contains("upsert"));

    let garbage = routes::handle(&state, &post("/graphs/g/deltas", b"not edges \xff".to_vec()));
    assert_eq!(garbage.status, 400);
    assert_eq!(
        body_json(&garbage).get("error").and_then(|e| e.get("code")).and_then(|c| c.as_str()),
        Some("invalid_delta")
    );
}

#[test]
fn betweenness_sampling_parameters_key_the_cache() {
    let state = state_with_graph();
    let a = routes::handle(&state, &get("/graphs/g/terrain?measure=betweenness&samples=8&seed=1"));
    let b = routes::handle(&state, &get("/graphs/g/terrain?measure=betweenness&samples=8&seed=2"));
    assert_eq!(a.status, 200);
    assert_eq!(b.status, 200);
    assert_eq!(b.header_value("x-cache"), Some("miss"), "a new seed is a new artifact");
    assert_ne!(a.header_value("etag"), b.header_value("etag"));
}
