//! In-process route tests: drive [`serve::routes::handle`] directly with
//! constructed [`Request`]s — no sockets — to pin the API contract: status
//! codes, the structured error bodies (including the typed
//! `Parallelism::parse` / `exporter_by_name` 400 mappings), the registry
//! protocol, and the cache headers.

use std::sync::Arc;

use graph_terrain::SharedGraph;
use serve::http::{parse_query, Method, Request};
use serve::routes;
use serve::state::{AppState, ServerConfig};
use ugraph::GraphBuilder;

fn state_with_graph() -> Arc<AppState> {
    let state = Arc::new(AppState::new(ServerConfig::default()));
    let mut builder = GraphBuilder::new();
    for u in 0..5u32 {
        for v in (u + 1)..5u32 {
            builder.add_edge(u, v);
        }
    }
    builder.extend_edges([(4u32, 5u32), (5, 6)]);
    state.insert_graph(Some("g".into()), SharedGraph::new(builder.build())).unwrap();
    state
}

fn get(target: &str) -> Request {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };
    Request { method: Method::Get, path, query, headers: Vec::new(), body: Vec::new() }
}

fn post(target: &str, body: Vec<u8>) -> Request {
    Request { method: Method::Post, body, ..get(target) }
}

fn delete(target: &str) -> Request {
    Request { method: Method::Delete, ..get(target) }
}

fn body_json(response: &serve::Response) -> serde_json::Value {
    serde_json::from_str(&String::from_utf8_lossy(&response.body))
        .expect("response body must be JSON")
}

#[test]
fn unknown_routes_and_graphs_are_structured_404s() {
    let state = state_with_graph();
    for target in ["/nope", "/graphs/missing/terrain", "/graphs/g/nope", "/graphs/missing"] {
        let response = routes::handle(&state, &get(target));
        assert_eq!(response.status, 404, "{target}");
        let doc = body_json(&response);
        assert_eq!(
            doc.get("error").and_then(|e| e.get("code")).and_then(|c| c.as_str()),
            Some("not_found"),
            "{target}"
        );
    }
}

#[test]
fn bad_threads_param_is_the_typed_parallelism_400() {
    let state = state_with_graph();
    let response = routes::handle(&state, &get("/graphs/g/terrain?threads=8x0"));
    assert_eq!(response.status, 400);
    let doc = body_json(&response);
    let error = doc.get("error").expect("error object");
    assert_eq!(error.get("code").and_then(|c| c.as_str()), Some("invalid_parameter"));
    assert_eq!(error.get("param").and_then(|p| p.as_str()), Some("threads"));
    let message = error.get("message").and_then(|m| m.as_str()).unwrap();
    assert!(message.contains("8x0"), "{message}");
    assert!(message.contains("nonzero width"), "{message}");
}

#[test]
fn bad_format_param_is_the_typed_exporter_400() {
    let state = state_with_graph();
    let response = routes::handle(&state, &get("/graphs/g/terrain?format=gif"));
    assert_eq!(response.status, 400);
    let error = body_json(&response);
    let error = error.get("error").expect("error object");
    assert_eq!(error.get("param").and_then(|p| p.as_str()), Some("format"));
    let message = error.get("message").and_then(|m| m.as_str()).unwrap();
    assert!(message.contains("gif"), "{message}");
    assert!(message.contains("treemap"), "should list backends: {message}");
}

#[test]
fn invalid_parameters_never_panic_and_name_the_param() {
    let state = state_with_graph();
    let cases = [
        ("/graphs/g/terrain?measure=bogus", "measure"),
        ("/graphs/g/terrain?width=fat", "width"),
        ("/graphs/g/terrain?levels=zero", "levels"),
        ("/graphs/g/terrain?budget=-3", "budget"),
        ("/graphs/g/terrain?color=plaid", "color"),
        ("/graphs/g/terrain?measure=edge-triangles&color=degree", "color"),
        ("/graphs/g/peaks?alpha=tall", "alpha"),
        ("/graphs/g/peaks?count=-1", "count"),
    ];
    for (target, param) in cases {
        let response = routes::handle(&state, &get(target));
        assert_eq!(response.status, 400, "{target}");
        let doc = body_json(&response);
        assert_eq!(
            doc.get("error").and_then(|e| e.get("param")).and_then(|p| p.as_str()),
            Some(param),
            "{target}"
        );
    }
}

#[test]
fn threads_param_changes_nothing_about_the_artifact_or_cache_key() {
    let state = state_with_graph();
    let serial = routes::handle(&state, &get("/graphs/g/terrain?threads=serial"));
    assert_eq!(serial.status, 200);
    assert_eq!(serial.header_value("x-cache"), Some("miss"));
    // Different thread budget, same everything else: must be a *hit* (the
    // key excludes parallelism) with identical bytes.
    let threaded = routes::handle(&state, &get("/graphs/g/terrain?threads=2x64"));
    assert_eq!(threaded.status, 200);
    assert_eq!(threaded.header_value("x-cache"), Some("hit"));
    assert_eq!(serial.body, threaded.body);
    assert_eq!(serial.header_value("etag"), threaded.header_value("etag"));
}

#[test]
fn distinct_render_parameters_get_distinct_cache_entries_and_etags() {
    let state = state_with_graph();
    let default = routes::handle(&state, &get("/graphs/g/terrain"));
    let resized = routes::handle(&state, &get("/graphs/g/terrain?width=640&height=480"));
    let recolored = routes::handle(&state, &get("/graphs/g/terrain?color=degree"));
    assert_eq!(default.status, 200);
    assert_eq!(resized.status, 200);
    assert_eq!(recolored.status, 200);
    for response in [&resized, &recolored] {
        assert_eq!(response.header_value("x-cache"), Some("miss"));
        assert_ne!(response.header_value("etag"), default.header_value("etag"));
    }
    // A different size provably changes the bytes; a different palette may
    // coincide on a tiny graph, so only the key separation is asserted.
    assert_ne!(resized.body, default.body);
    assert_eq!(state.cache.lock().unwrap().len(), 3);
}

#[test]
fn if_none_match_returns_304_without_rendering() {
    let state = state_with_graph();
    let first = routes::handle(&state, &get("/graphs/g/terrain"));
    let etag = first.header_value("etag").unwrap().to_string();
    let mut conditional = get("/graphs/g/terrain");
    conditional.headers.push(("if-none-match".into(), etag.clone()));
    let response = routes::handle(&state, &conditional);
    assert_eq!(response.status, 304);
    assert_eq!(response.header_value("etag"), Some(etag.as_str()));
    // The 304 never touched the cache: exactly one lookup (the first
    // render's miss) is on the books.
    let stats = state.cache.lock().unwrap().stats();
    assert_eq!(stats.hits + stats.misses, 1);
}

#[test]
fn upload_registers_lists_describes_and_conflicts() {
    let state = Arc::new(AppState::new(ServerConfig::default()));
    let edgelist = b"0 1\n1 2\n2 0\n".to_vec();

    let created = routes::handle(&state, &post("/graphs?id=tri", edgelist.clone()));
    assert_eq!(created.status, 201, "{}", String::from_utf8_lossy(&created.body));
    assert_eq!(created.header_value("location"), Some("/graphs/tri"));
    let doc = body_json(&created);
    assert_eq!(doc.get("vertices").and_then(|v| v.as_u64()), Some(3));
    assert_eq!(doc.get("edges").and_then(|v| v.as_u64()), Some(3));
    assert_eq!(doc.get("storage").and_then(|v| v.as_str()), Some("owned"));

    // Same id again: 409, registry unchanged.
    let conflict = routes::handle(&state, &post("/graphs?id=tri", edgelist.clone()));
    assert_eq!(conflict.status, 409);

    // Auto-id upload, then list both.
    let auto = routes::handle(&state, &post("/graphs", edgelist));
    assert_eq!(auto.status, 201);
    let list = routes::handle(&state, &get("/graphs"));
    let listed = body_json(&list);
    assert_eq!(listed.get("graphs").and_then(|g| g.as_array()).map(|a| a.len()), Some(2));

    // Garbage uploads are 400s, not panics.
    let garbage = routes::handle(&state, &post("/graphs", b"not a graph \xff".to_vec()));
    assert_eq!(garbage.status, 400);
    let empty = routes::handle(&state, &post("/graphs", Vec::new()));
    assert_eq!(empty.status, 400);
}

#[test]
fn peaks_returns_the_clique_and_stats_reflects_traffic() {
    let state = state_with_graph();
    let peaks = routes::handle(&state, &get("/graphs/g/peaks?count=2"));
    assert_eq!(peaks.status, 200);
    let doc = body_json(&peaks);
    let list = doc.get("peaks").and_then(|p| p.as_array()).expect("peaks array");
    assert!(!list.is_empty());
    let first = &list[0];
    // The K5 dominates the K-Core terrain: the top peak has summit 4.
    assert_eq!(first.get("summit_height").and_then(|v| v.as_f64()), Some(4.0));
    assert!(first.get("member_count").and_then(|v| v.as_u64()).unwrap() >= 5);
    assert!(first.get("footprint").is_some());

    let stats = routes::handle(&state, &get("/stats"));
    assert_eq!(stats.status, 200);
    let doc = body_json(&stats);
    assert_eq!(doc.get("graphs").and_then(|v| v.as_u64()), Some(1));
    let cache = doc.get("cache").expect("cache object");
    assert_eq!(cache.get("misses").and_then(|v| v.as_u64()), Some(1));
    let totals = doc.get("stage_seconds").expect("stage_seconds object");
    assert_eq!(totals.get("renders").and_then(|v| v.as_u64()), Some(1));
}

#[test]
fn delete_unregisters_the_graph_and_evicts_its_artifacts() {
    let state = state_with_graph();
    assert_eq!(routes::handle(&state, &get("/graphs/g/terrain")).status, 200);
    assert_eq!(routes::handle(&state, &get("/graphs/g/peaks")).status, 200);
    assert_eq!(state.cache.lock().unwrap().len(), 2);

    let gone = routes::handle(&state, &delete("/graphs/missing"));
    assert_eq!(gone.status, 404);

    let deleted = routes::handle(&state, &delete("/graphs/g"));
    assert_eq!(deleted.status, 200, "{}", String::from_utf8_lossy(&deleted.body));
    let doc = body_json(&deleted);
    assert_eq!(doc.get("deleted").and_then(|v| v.as_str()), Some("g"));
    assert_eq!(doc.get("evicted_artifacts").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(state.cache.lock().unwrap().len(), 0, "the id's artifacts must go");

    assert_eq!(routes::handle(&state, &get("/graphs/g")).status, 404);
    assert_eq!(routes::handle(&state, &delete("/graphs/g")).status, 404, "second delete");
}

#[test]
fn structural_deltas_mutate_the_graph_and_change_the_etag() {
    let state = state_with_graph();
    let before = routes::handle(&state, &get("/graphs/g/terrain"));
    assert_eq!(before.status, 200);

    // Grow the graph: a new edge into fresh vertex 7 plus a redundant one.
    let applied = routes::handle(&state, &post("/graphs/g/deltas", b"6 7\n0 1\n".to_vec()));
    assert_eq!(applied.status, 200, "{}", String::from_utf8_lossy(&applied.body));
    let doc = body_json(&applied);
    assert_eq!(doc.get("structural").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(doc.get("inserted").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(doc.get("redundant_inserts").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(doc.get("evicted_artifacts").and_then(|v| v.as_u64()), Some(1));
    let graph = doc.get("graph").expect("graph facts");
    assert_eq!(graph.get("vertices").and_then(|v| v.as_u64()), Some(8));
    let costs = doc.get("measure_costs").expect("measure cost table");
    assert_eq!(costs.get("degree").and_then(|v| v.as_str()), Some("local"));
    assert_eq!(costs.get("kcore").and_then(|v| v.as_str()), Some("dirty-region"));
    assert_eq!(costs.get("pagerank").and_then(|v| v.as_str()), Some("full"));

    // The registry now serves the mutated graph, and a re-render is a
    // fresh artifact with a different ETag (the key embeds only the id,
    // but the old entry was evicted so the bytes are recomputed).
    let info = body_json(&routes::handle(&state, &get("/graphs/g")));
    assert_eq!(info.get("vertices").and_then(|v| v.as_u64()), Some(8));
    assert_eq!(info.get("generation").and_then(|v| v.as_u64()), Some(1));
    let after = routes::handle(&state, &get("/graphs/g/terrain"));
    assert_eq!(after.header_value("x-cache"), Some("miss"), "stale bytes must not be served");
    assert_ne!(after.body, before.body);
    assert_ne!(
        after.header_value("etag"),
        before.header_value("etag"),
        "the generation is in the key, so the key-derived ETag must change"
    );
    // A conditional request with the pre-delta ETag must re-render, not 304.
    let mut conditional = get("/graphs/g/terrain");
    conditional
        .headers
        .push(("if-none-match".into(), before.header_value("etag").unwrap().to_string()));
    assert_eq!(routes::handle(&state, &conditional).status, 200);

    // The mutated graph renders byte-identically to a direct upload of the
    // same final edge list under a fresh id modulo the id-dependent key.
    let mut final_edges = Vec::new();
    let entry = state.graph("g").unwrap();
    let storage = entry.graph.storage();
    for e in storage.edges() {
        final_edges.extend_from_slice(format!("{} {}\n", e.u, e.v).as_bytes());
    }
    let fresh = routes::handle(&state, &post("/graphs?id=rebuilt", final_edges));
    assert_eq!(fresh.status, 201);
    let direct = routes::handle(&state, &get("/graphs/rebuilt/terrain"));
    assert_eq!(direct.body, after.body, "incremental and from-scratch artifacts must agree");
}

#[test]
fn noop_deltas_leave_the_graph_cache_and_etags_alone() {
    let state = state_with_graph();
    let before = routes::handle(&state, &get("/graphs/g/terrain"));
    let etag = before.header_value("etag").unwrap().to_string();

    // A redundant insert, an absent delete, and a reweight: no structure.
    // The absent delete names vertices inside the existing range — a batch
    // mentioning a fresh vertex id grows the graph, which *is* structural.
    let redundant = routes::handle(&state, &post("/graphs/g/deltas", b"0 1\n".to_vec()));
    let absent = routes::handle(&state, &post("/graphs/g/deltas?op=delete", b"0 5\n".to_vec()));
    let reweight = routes::handle(&state, &post("/graphs/g/deltas?op=reweight", b"0 1\n".to_vec()));
    for (response, field) in
        [(&redundant, "redundant_inserts"), (&absent, "absent_deletes"), (&reweight, "reweights")]
    {
        assert_eq!(response.status, 200, "{}", String::from_utf8_lossy(&response.body));
        let doc = body_json(response);
        assert_eq!(doc.get("structural").and_then(|v| v.as_bool()), Some(false), "{field}");
        assert_eq!(doc.get("evicted_artifacts").and_then(|v| v.as_u64()), Some(0), "{field}");
        assert_eq!(doc.get(field).and_then(|v| v.as_u64()), Some(1), "{field}");
    }
    let cached = routes::handle(&state, &get("/graphs/g/terrain"));
    assert_eq!(cached.header_value("x-cache"), Some("hit"), "no-op deltas must not evict");
    assert_eq!(cached.header_value("etag"), Some(etag.as_str()));
}

#[test]
fn delta_parameter_errors_are_structured_400s_and_404s() {
    let state = state_with_graph();
    let missing = routes::handle(&state, &post("/graphs/nope/deltas", b"0 1\n".to_vec()));
    assert_eq!(missing.status, 404);

    let empty = routes::handle(&state, &post("/graphs/g/deltas", Vec::new()));
    assert_eq!(empty.status, 400);
    assert_eq!(
        body_json(&empty).get("error").and_then(|e| e.get("code")).and_then(|c| c.as_str()),
        Some("empty_body")
    );

    let bad_op = routes::handle(&state, &post("/graphs/g/deltas?op=upsert", b"0 1\n".to_vec()));
    assert_eq!(bad_op.status, 400);
    let doc = body_json(&bad_op);
    let error = doc.get("error").expect("error object");
    assert_eq!(error.get("param").and_then(|p| p.as_str()), Some("op"));
    assert!(error.get("message").and_then(|m| m.as_str()).unwrap().contains("upsert"));

    let garbage = routes::handle(&state, &post("/graphs/g/deltas", b"not edges \xff".to_vec()));
    assert_eq!(garbage.status, 400);
    assert_eq!(
        body_json(&garbage).get("error").and_then(|e| e.get("code")).and_then(|c| c.as_str()),
        Some("invalid_delta")
    );
}

#[test]
fn tile_requests_miss_then_hit_with_identical_bytes_regardless_of_threads() {
    let state = state_with_graph();
    let first = routes::handle(&state, &get("/graphs/g/tiles/0/0/0"));
    assert_eq!(first.status, 200, "{}", String::from_utf8_lossy(&first.body));
    assert_eq!(first.header_value("x-cache"), Some("miss"));
    assert_eq!(first.header_value("content-type"), Some("image/svg+xml"));
    assert!(first.body.starts_with(b"<svg"), "tile body must be an SVG document");
    let etag = first.header_value("etag").expect("tile responses carry an ETag").to_string();

    // Re-request under a different thread budget: the tile key excludes
    // parallelism, so this must be a byte-identical cache hit.
    let again = routes::handle(&state, &get("/graphs/g/tiles/0/0/0?threads=2x64"));
    assert_eq!(again.status, 200);
    assert_eq!(again.header_value("x-cache"), Some("hit"));
    assert_eq!(again.body, first.body);
    assert_eq!(again.header_value("etag"), Some(etag.as_str()));

    // And the conditional protocol holds: If-None-Match short-circuits to a
    // bodyless 304 carrying the same ETag.
    let mut conditional = get("/graphs/g/tiles/0/0/0");
    conditional.headers.push(("if-none-match".into(), etag.clone()));
    let not_modified = routes::handle(&state, &conditional);
    assert_eq!(not_modified.status, 304);
    assert_eq!(not_modified.header_value("etag"), Some(etag.as_str()));
    assert!(not_modified.body.is_empty());
}

#[test]
fn distinct_tile_keys_zooms_sizes_and_formats_are_distinct_artifacts() {
    let state = state_with_graph();
    let base = routes::handle(&state, &get("/graphs/g/tiles/0/0/0"));
    let zoomed = routes::handle(&state, &get("/graphs/g/tiles/1/0/0"));
    let neighbor = routes::handle(&state, &get("/graphs/g/tiles/1/1/1"));
    let resized = routes::handle(&state, &get("/graphs/g/tiles/0/0/0?size=128"));
    let binary = routes::handle(&state, &get("/graphs/g/tiles/0/0/0?format=scene"));
    for (response, what) in [
        (&base, "base"),
        (&zoomed, "zoomed"),
        (&neighbor, "neighbor"),
        (&resized, "resized"),
        (&binary, "binary"),
    ] {
        assert_eq!(response.status, 200, "{what}");
        assert_eq!(response.header_value("x-cache"), Some("miss"), "{what}");
        if what != "base" {
            assert_ne!(response.header_value("etag"), base.header_value("etag"), "{what}");
        }
    }
    assert_eq!(binary.header_value("content-type"), Some("application/octet-stream"));
    assert!(binary.body.starts_with(b"GTSC"), "format=scene streams the binary tile");
    assert_eq!(state.cache.lock().unwrap().len(), 5);
}

#[test]
fn tiles_outside_the_grid_are_404s_and_bad_tile_parameters_are_400s() {
    let state = state_with_graph();
    // Past the zoom ceiling, and tx/ty at or past 2^zoom: the range check
    // rejects before any render, so the cache stays untouched.
    for target in [
        "/graphs/g/tiles/9/0/0",
        "/graphs/g/tiles/1/2/0",
        "/graphs/g/tiles/0/0/1",
        "/graphs/g/tiles/2/0/4",
    ] {
        let response = routes::handle(&state, &get(target));
        assert_eq!(response.status, 404, "{target}");
        let doc = body_json(&response);
        let message = doc
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(|m| m.as_str())
            .expect("message");
        assert!(message.contains("outside the grid"), "{target}: {message}");
    }
    let cases = [
        ("/graphs/g/tiles/x/0/0", "zoom"),
        ("/graphs/g/tiles/0/-1/0", "tx"),
        ("/graphs/g/tiles/0/0/1.5", "ty"),
        ("/graphs/g/tiles/0/0/0?format=gif", "format"),
        ("/graphs/g/tiles/0/0/0?size=0", "size"),
        ("/graphs/g/tiles/0/0/0?size=4096", "size"),
        ("/graphs/g/tiles/0/0/0?measure=bogus", "measure"),
    ];
    for (target, param) in cases {
        let response = routes::handle(&state, &get(target));
        assert_eq!(response.status, 400, "{target}");
        let doc = body_json(&response);
        assert_eq!(
            doc.get("error").and_then(|e| e.get("param")).and_then(|p| p.as_str()),
            Some(param),
            "{target}"
        );
    }
    assert_eq!(state.cache.lock().unwrap().len(), 0, "rejected requests never render");
    assert_eq!(routes::handle(&state, &get("/graphs/missing/tiles/0/0/0")).status, 404);
}

#[test]
fn scene_route_streams_a_decodable_gtsc_document() {
    let state = state_with_graph();
    let response = routes::handle(&state, &get("/graphs/g/scene"));
    assert_eq!(response.status, 200, "{}", String::from_utf8_lossy(&response.body));
    assert_eq!(response.header_value("content-type"), Some("application/octet-stream"));
    assert_eq!(response.header_value("x-cache"), Some("miss"));
    let doc = graph_terrain::decode_gtsc(&response.body).expect("scene body must decode");
    assert!(!doc.items.is_empty());
    assert_eq!(doc.header.tile_px, 256, "the server pins the default LOD config");
    assert!(doc.tile.is_none(), "the whole-scene document is not stamped with a tile key");

    // Second fetch is the cached bytes; a tile's GTSC stream is a strict
    // subset stamped with its key.
    let again = routes::handle(&state, &get("/graphs/g/scene"));
    assert_eq!(again.header_value("x-cache"), Some("hit"));
    assert_eq!(again.body, response.body);
    let tile = routes::handle(&state, &get("/graphs/g/tiles/1/0/0?format=scene"));
    assert_eq!(tile.status, 200);
    let tile_doc = graph_terrain::decode_gtsc(&tile.body).expect("tile body must decode");
    let (stamp, _bounds) = tile_doc.tile.expect("tile documents are stamped");
    assert_eq!((stamp.zoom, stamp.tx, stamp.ty), (1, 0, 0));
    assert!(tile_doc.items.len() <= doc.items.len());
}

#[test]
fn structural_deltas_invalidate_tiles_and_scenes_through_the_generation() {
    let state = state_with_graph();
    let tile_before = routes::handle(&state, &get("/graphs/g/tiles/0/0/0"));
    let scene_before = routes::handle(&state, &get("/graphs/g/scene"));
    assert_eq!(tile_before.status, 200);
    assert_eq!(scene_before.status, 200);
    let old_etag = tile_before.header_value("etag").unwrap().to_string();

    // Grow the graph into fresh vertex 7: structural, so the id's artifacts
    // are evicted and the generation lands in every new cache key.
    let applied = routes::handle(&state, &post("/graphs/g/deltas", b"6 7\n".to_vec()));
    assert_eq!(applied.status, 200, "{}", String::from_utf8_lossy(&applied.body));

    let tile_after = routes::handle(&state, &get("/graphs/g/tiles/0/0/0"));
    assert_eq!(tile_after.header_value("x-cache"), Some("miss"), "stale tiles must not serve");
    assert_ne!(tile_after.header_value("etag"), Some(old_etag.as_str()));
    assert_ne!(tile_after.body, tile_before.body, "a new vertex changes the rendered terrain");
    let scene_after = routes::handle(&state, &get("/graphs/g/scene"));
    assert_eq!(scene_after.header_value("x-cache"), Some("miss"));
    assert_ne!(scene_after.body, scene_before.body);

    // A client replaying its pre-delta ETag re-renders instead of 304ing.
    let mut conditional = get("/graphs/g/tiles/0/0/0");
    conditional.headers.push(("if-none-match".into(), old_etag));
    let replay = routes::handle(&state, &conditional);
    assert_eq!(replay.status, 200);
    assert_eq!(replay.body, tile_after.body);
}

#[test]
fn betweenness_sampling_parameters_key_the_cache() {
    let state = state_with_graph();
    let a = routes::handle(&state, &get("/graphs/g/terrain?measure=betweenness&samples=8&seed=1"));
    let b = routes::handle(&state, &get("/graphs/g/terrain?measure=betweenness&samples=8&seed=2"));
    assert_eq!(a.status, 200);
    assert_eq!(b.status, 200);
    assert_eq!(b.header_value("x-cache"), Some("miss"), "a new seed is a new artifact");
    assert_ne!(a.header_value("etag"), b.header_value("etag"));
}
