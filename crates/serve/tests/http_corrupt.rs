//! The corrupt-request battery: every way a client can mangle a request —
//! truncation at *every byte boundary*, oversized lines, bad methods, bad
//! `Content-Length`s, premature disconnects, binary garbage — must produce
//! a 4xx/5xx response or a clean connection drop. Never a panic, and the
//! server must keep answering well-formed requests afterwards.
//!
//! These tests talk raw TCP on purpose: the [`serve::client`] module can
//! only *produce* well-formed requests.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use graph_terrain::SharedGraph;
use serve::state::{AppState, ServerConfig};
use serve::{Server, ServerHandle};
use ugraph::GraphBuilder;

/// A small server with a tight read timeout so silent-client tests finish
/// quickly.
fn boot() -> ServerHandle {
    let config = ServerConfig {
        workers: 4,
        read_timeout: Duration::from_millis(300),
        max_body_bytes: 1 << 20,
        ..ServerConfig::default()
    };
    let state = Arc::new(AppState::new(config));
    let mut builder = GraphBuilder::new();
    builder.extend_edges([(0u32, 1u32), (1, 2), (2, 0), (2, 3)]);
    state.insert_graph(Some("g".into()), SharedGraph::new(builder.build())).unwrap();
    Server::bind_with_state("127.0.0.1:0", state).expect("bind ephemeral")
}

/// Send raw bytes, half-close the write side, and read whatever comes back.
fn send_raw(addr: SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // The peer may 4xx-and-close before consuming everything we send;
    // ignore the resulting EPIPE and still read the response.
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(Shutdown::Write);
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    response
}

fn status_of(response: &[u8]) -> Option<u16> {
    let text = String::from_utf8_lossy(response);
    let mut parts = text.split(' ');
    if parts.next()?.starts_with("HTTP/1.1") {
        parts.next()?.parse().ok()
    } else {
        None
    }
}

/// The liveness probe every test ends with: the server still answers a
/// well-formed request after the abuse.
fn assert_alive(addr: SocketAddr) {
    let response = serve::client::get(addr, "/healthz").expect("server must still answer");
    assert_eq!(response.status, 200, "server must stay healthy");
}

#[test]
fn every_truncation_prefix_gets_4xx_or_clean_drop_and_server_survives() {
    let server = boot();
    let addr = server.addr();
    let full = b"GET /graphs/g/terrain?measure=kcore HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n";
    for cut in 0..full.len() {
        let response = send_raw(addr, &full[..cut]);
        if response.is_empty() {
            continue; // clean drop: acceptable for any truncation
        }
        let status =
            status_of(&response).unwrap_or_else(|| panic!("cut={cut}: non-HTTP bytes came back"));
        assert!(
            (400..600).contains(&status),
            "cut={cut}: truncated request must not succeed, got {status}"
        );
    }
    assert_alive(addr);
    server.shutdown();
}

#[test]
fn truncated_post_bodies_are_rejected_not_hung() {
    let server = boot();
    let addr = server.addr();
    // Declares 1000 bytes, sends 10, half-closes: the server must answer
    // (400) rather than hold the worker forever.
    let response =
        send_raw(addr, b"POST /graphs HTTP/1.1\r\nContent-Length: 1000\r\n\r\n0123456789");
    assert_eq!(status_of(&response), Some(400));
    assert_alive(addr);
    server.shutdown();
}

#[test]
fn silent_clients_time_out_without_taking_down_a_worker() {
    let server = boot();
    let addr = server.addr();
    // Open connections that never send a byte; workers must recycle them
    // after the read timeout rather than leak.
    let idlers: Vec<TcpStream> =
        (0..3).map(|_| TcpStream::connect(addr).expect("connect")).collect();
    std::thread::sleep(Duration::from_millis(600)); // > read_timeout
    assert_alive(addr);
    drop(idlers);
    server.shutdown();
}

#[test]
fn oversized_request_lines_and_headers_are_bounced() {
    let server = boot();
    let addr = server.addr();

    let mut long_target = b"GET /".to_vec();
    long_target.extend(std::iter::repeat(b'a').take(9 * 1024));
    long_target.extend_from_slice(b" HTTP/1.1\r\n\r\n");
    assert_eq!(status_of(&send_raw(addr, &long_target)), Some(414));

    let mut fat_header = b"GET /healthz HTTP/1.1\r\nX-Fat: ".to_vec();
    fat_header.extend(std::iter::repeat(b'b').take(9 * 1024));
    fat_header.extend_from_slice(b"\r\n\r\n");
    assert_eq!(status_of(&send_raw(addr, &fat_header)), Some(431));

    let mut many_headers = b"GET /healthz HTTP/1.1\r\n".to_vec();
    for i in 0..100 {
        many_headers.extend_from_slice(format!("X-{i}: v\r\n").as_bytes());
    }
    many_headers.extend_from_slice(b"\r\n");
    assert_eq!(status_of(&send_raw(addr, &many_headers)), Some(431));

    assert_alive(addr);
    server.shutdown();
}

#[test]
fn bad_methods_paths_versions_and_content_lengths_get_typed_statuses() {
    let server = boot();
    let addr = server.addr();
    let cases: Vec<(&[u8], u16)> = vec![
        (b"PUT /graphs/g HTTP/1.1\r\n\r\n" as &[u8], 405),
        (b"BREW /coffee HTTP/1.1\r\n\r\n", 405),
        (b"DELETE /graphs/never-registered HTTP/1.1\r\n\r\n", 404),
        (b"GET /healthz HTTP/9.9\r\n\r\n", 505),
        (b"GET healthz HTTP/1.1\r\n\r\n", 400),
        (b"GET /healthz\r\n\r\n", 400),
        (b"completely not http\r\n\r\n", 400),
        (b"POST /graphs HTTP/1.1\r\n\r\n", 411),
        (b"POST /graphs HTTP/1.1\r\nContent-Length: banana\r\n\r\n", 400),
        (b"POST /graphs HTTP/1.1\r\nContent-Length: -5\r\n\r\n", 400),
        (b"POST /graphs HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n", 413),
        (b"GET /healthz HTTP/1.1\r\nbroken header line\r\n\r\n", 400),
    ];
    for (raw, expected) in cases {
        let response = send_raw(addr, raw);
        assert_eq!(
            status_of(&response),
            Some(expected),
            "request {:?}",
            String::from_utf8_lossy(raw)
        );
        // Error bodies are structured JSON, like every other error.
        let text = String::from_utf8_lossy(&response);
        let body_start = text.find("\r\n\r\n").expect("header/body separator") + 4;
        serde_json::from_str(&text[body_start..]).expect("error body is JSON");
    }
    assert_alive(addr);
    server.shutdown();
}

#[test]
fn binary_garbage_and_instant_disconnects_never_kill_the_server() {
    let server = boot();
    let addr = server.addr();
    // Garbage of every flavor.
    let garbage: Vec<Vec<u8>> = vec![
        vec![0u8; 256],
        (0..=255u8).collect(),
        b"\xff\xfe\x00\x01GET / HTTP/1.1\r\n\r\n".to_vec(),
        b"\r\n\r\n\r\n".to_vec(),
    ];
    for raw in &garbage {
        let _ = send_raw(addr, raw);
    }
    // Connect-and-vanish, repeatedly.
    for _ in 0..10 {
        let stream = TcpStream::connect(addr).expect("connect");
        drop(stream);
    }
    assert_alive(addr);
    // Dropped/errored connections are accounted, not hidden: between the
    // garbage and the vanishing clients, *something* must have registered.
    let state = server.state();
    let dropped = state.dropped_connections.load(std::sync::atomic::Ordering::Relaxed);
    let errors = state.error_responses.load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        dropped + errors > 0,
        "abuse must show up in the counters (dropped={dropped}, errors={errors})"
    );
    server.shutdown();
}
