//! Shared server state: the named-graph registry, the artifact cache, and
//! the counters behind `/stats`.
//!
//! One [`AppState`] is shared by every worker thread through an `Arc`. The
//! registry maps graph ids to [`SharedGraph`]s — uploading a v3 snapshot
//! registers a *mapped* graph whose CSR arrays live in one buffer that all
//! concurrent sessions borrow (an upload is stored once no matter how many
//! workers render from it); any other format parses into an owned graph
//! behind the same `Arc`. Locking is coarse but short: the registry is a
//! `RwLock` (reads vastly dominate), the cache a `Mutex` held only for
//! lookup/insert — renders always run outside every lock.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

use crate::cache::LruCache;
use crate::error::ApiError;
use graph_terrain::{SharedGraph, StageTimings};

/// Tunables fixed at server start.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Artifact-cache entry bound.
    pub cache_entries: usize,
    /// Artifact-cache byte bound.
    pub cache_bytes: usize,
    /// Largest accepted request body (graph uploads).
    pub max_body_bytes: usize,
    /// Socket read timeout (bounds how long a slow or silent client can
    /// hold a worker).
    pub read_timeout: Duration,
    /// Accepted connections queued ahead of the workers before `accept`
    /// blocks.
    pub pending_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            cache_entries: 128,
            cache_bytes: 64 << 20,
            max_body_bytes: 64 << 20,
            read_timeout: Duration::from_secs(10),
            pending_connections: 64,
        }
    }
}

/// One registered graph.
#[derive(Clone, Debug)]
pub struct GraphEntry {
    /// The registry id (path segment in `/graphs/{id}/...`).
    pub id: String,
    /// The graph itself, shared across sessions.
    pub graph: SharedGraph,
    /// How many times the graph under this id has been replaced by a delta.
    /// Cache keys embed the generation, so a mutation changes every key —
    /// and with it every key-derived ETag — while the old graph's entries
    /// are evicted by id prefix. Without this, a client holding a
    /// pre-mutation ETag would keep getting `304 Not Modified` for bytes
    /// that no longer exist.
    pub generation: u64,
}

/// Per-stage wall-clock totals accumulated across every cache-miss render,
/// reported by `/stats` (the served-traffic analog of the per-run
/// [`StageTimings`]).
#[derive(Clone, Debug, Default)]
pub struct StageTotals {
    /// Renders absorbed.
    pub renders: u64,
    /// Summed seconds per stage, in pipeline order.
    pub scalar_seconds: f64,
    /// Scalar-tree construction.
    pub tree_seconds: f64,
    /// Super-tree merge.
    pub super_tree_seconds: f64,
    /// Simplification.
    pub simplify_seconds: f64,
    /// 2D layout.
    pub layout_seconds: f64,
    /// Mesh extrusion.
    pub mesh_seconds: f64,
    /// SVG/exporter serialization.
    pub svg_seconds: f64,
    /// Retained LOD scene builds (tile and scene routes).
    pub scene_seconds: f64,
}

impl StageTotals {
    /// Fold one session's timings into the totals.
    pub fn absorb(&mut self, t: &StageTimings) {
        self.renders += 1;
        self.scalar_seconds += t.scalar_seconds.unwrap_or(0.0);
        self.tree_seconds += t.tree_seconds.unwrap_or(0.0);
        self.super_tree_seconds += t.super_tree_seconds.unwrap_or(0.0);
        self.simplify_seconds += t.simplify_seconds.unwrap_or(0.0);
        self.layout_seconds += t.layout_seconds.unwrap_or(0.0);
        self.mesh_seconds += t.mesh_seconds.unwrap_or(0.0);
        self.svg_seconds += t.svg_seconds.unwrap_or(0.0);
        self.scene_seconds += t.scene_seconds.unwrap_or(0.0);
    }
}

/// Everything the workers share.
pub struct AppState {
    /// The start-time configuration (echoed by `/stats`).
    pub config: ServerConfig,
    registry: RwLock<BTreeMap<String, Arc<GraphEntry>>>,
    /// The artifact cache.
    pub cache: Mutex<LruCache>,
    /// Stage-seconds accumulated across cache-miss renders.
    pub stage_totals: Mutex<StageTotals>,
    next_id: AtomicU64,
    /// Requests that received a response (any status).
    pub requests_served: AtomicU64,
    /// Connections currently inside a worker.
    pub in_flight: AtomicU64,
    /// Responses with status >= 400.
    pub error_responses: AtomicU64,
    /// Connections dropped without a response (peer vanished).
    pub dropped_connections: AtomicU64,
    /// `304 Not Modified` responses served from `If-None-Match`.
    pub not_modified: AtomicU64,
}

impl AppState {
    /// Fresh state with an empty registry and cache.
    pub fn new(config: ServerConfig) -> Self {
        let cache = LruCache::new(config.cache_entries, config.cache_bytes);
        AppState {
            config,
            registry: RwLock::new(BTreeMap::new()),
            cache: Mutex::new(cache),
            stage_totals: Mutex::new(StageTotals::default()),
            next_id: AtomicU64::new(1),
            requests_served: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            error_responses: AtomicU64::new(0),
            dropped_connections: AtomicU64::new(0),
            not_modified: AtomicU64::new(0),
        }
    }

    /// Register a graph under `id` (or an auto-assigned `g<n>` when `None`).
    /// Explicit ids must be `[A-Za-z0-9_-]{1,64}` and unused — an id
    /// collision is a 409, never a silent replace, because cache keys embed
    /// the id and a replaced graph would leave stale byte-exact entries
    /// behind.
    pub fn insert_graph(
        &self,
        id: Option<String>,
        graph: SharedGraph,
    ) -> Result<Arc<GraphEntry>, ApiError> {
        let mut registry = self.registry.write().expect("registry lock");
        let id = match id {
            Some(id) => {
                validate_graph_id(&id)?;
                if registry.contains_key(&id) {
                    return Err(ApiError::new(
                        409,
                        "graph_exists",
                        format!("graph id {id:?} is already registered"),
                    ));
                }
                id
            }
            None => loop {
                let candidate = format!("g{}", self.next_id.fetch_add(1, Ordering::Relaxed));
                if !registry.contains_key(&candidate) {
                    break candidate;
                }
            },
        };
        let entry = Arc::new(GraphEntry { id: id.clone(), graph, generation: 0 });
        registry.insert(id, Arc::clone(&entry));
        Ok(entry)
    }

    /// Look up a graph by id.
    pub fn graph(&self, id: &str) -> Option<Arc<GraphEntry>> {
        self.registry.read().expect("registry lock").get(id).cloned()
    }

    /// Unregister a graph, returning the removed entry (`None` when the id
    /// was never registered). The caller owes the cache a
    /// [`LruCache::evict_prefix`] sweep for `"{id}|"` — a removed graph must
    /// not leave byte-exact artifacts answerable under its old id.
    pub fn remove_graph(&self, id: &str) -> Option<Arc<GraphEntry>> {
        self.registry.write().expect("registry lock").remove(id)
    }

    /// Swap the graph registered under `id` for a mutated successor (the
    /// delta path), returning the new entry or `None` when the id is not
    /// registered. Sessions holding the old `Arc` keep rendering the old
    /// graph unharmed; as with [`remove_graph`](Self::remove_graph), the
    /// caller must evict the id's cache prefix so stale artifacts cannot be
    /// served for the mutated graph.
    pub fn replace_graph(&self, id: &str, graph: SharedGraph) -> Option<Arc<GraphEntry>> {
        let mut registry = self.registry.write().expect("registry lock");
        let old = registry.get(id)?;
        let entry =
            Arc::new(GraphEntry { id: id.to_string(), graph, generation: old.generation + 1 });
        registry.insert(id.to_string(), Arc::clone(&entry));
        Some(entry)
    }

    /// All registered graphs in id order.
    pub fn graphs(&self) -> Vec<Arc<GraphEntry>> {
        self.registry.read().expect("registry lock").values().cloned().collect()
    }
}

fn validate_graph_id(id: &str) -> Result<(), ApiError> {
    let ok = !id.is_empty()
        && id.len() <= 64
        && id.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-');
    if ok {
        Ok(())
    } else {
        Err(ApiError::invalid_parameter(
            "id",
            format!("graph id {id:?} must be 1-64 characters of [A-Za-z0-9_-]"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::GraphBuilder;

    fn tiny_graph() -> SharedGraph {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 0)]);
        SharedGraph::new(b.build())
    }

    #[test]
    fn auto_ids_skip_taken_names_and_explicit_conflicts_are_409() {
        let state = AppState::new(ServerConfig::default());
        state.insert_graph(Some("g1".into()), tiny_graph()).unwrap();
        let auto = state.insert_graph(None, tiny_graph()).unwrap();
        assert_eq!(auto.id, "g2", "auto id must skip the taken g1");
        let err = state.insert_graph(Some("g1".into()), tiny_graph()).unwrap_err();
        assert_eq!(err.status, 409);
        assert_eq!(state.graphs().len(), 2);
    }

    #[test]
    fn remove_and_replace_round_trip() {
        let state = AppState::new(ServerConfig::default());
        state.insert_graph(Some("g1".into()), tiny_graph()).unwrap();
        assert!(state.replace_graph("missing", tiny_graph()).is_none());
        let replaced = state.replace_graph("g1", tiny_graph()).unwrap();
        assert_eq!((replaced.id.as_str(), replaced.generation), ("g1", 1));
        assert_eq!(state.replace_graph("g1", tiny_graph()).unwrap().generation, 2);
        assert!(state.remove_graph("g1").is_some());
        assert!(state.remove_graph("g1").is_none(), "second delete finds nothing");
        assert!(state.graph("g1").is_none());
    }

    #[test]
    fn bad_ids_are_rejected_with_400() {
        let state = AppState::new(ServerConfig::default());
        for bad in ["", "has space", "slash/y", &"x".repeat(65)] {
            let err = state.insert_graph(Some(bad.to_string()), tiny_graph()).unwrap_err();
            assert_eq!(err.status, 400, "{bad:?}");
        }
    }
}
