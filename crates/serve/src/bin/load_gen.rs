//! Load generator for the terrain server: N client threads each issue M
//! randomized requests (terrain renders across measures/formats/sizes,
//! peaks, stats, and conditional revalidations), then the run is written as
//! a schema'd `LOAD_*.json` report next to the `BENCH_*.json` perf
//! baselines.
//!
//! ```text
//! load_gen --addr <host:port> --graph <path>
//!          [--clients 8] [--requests 128] [--seed 20170419] [--out <path>]
//! ```
//!
//! The request mix is seeded and deterministic per client: mostly terrain
//! renders drawn from a small pool of parameter combinations (so the cache
//! sees both cold misses and plenty of hits), a slice of peaks queries, an
//! occasional `/stats`, and — once a client has seen an ETag for a target —
//! conditional re-requests that exercise the `304` path.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

use bench::load_report::{CacheOutcome, LatencyMillis, LoadReport, LOAD_SCHEMA_VERSION};
use bench::report::{git_short_rev, utc_date};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serve::client;

fn flag(args: &[String], name: &str) -> Option<String> {
    let prefix = format!("{name}=");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(value) = arg.strip_prefix(&prefix) {
            return Some(value.to_string());
        }
        if arg == name {
            return iter.next().cloned();
        }
    }
    None
}

fn numeric<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag(args, name) {
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("[error] {name} value {raw:?} is not a valid number");
            std::process::exit(2);
        }),
        None => default,
    }
}

/// One client's tally.
#[derive(Default)]
struct ClientOutcome {
    latencies_ms: Vec<f64>,
    ok: u64,
    not_modified: u64,
    failed: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr: SocketAddr = flag(&args, "--addr")
        .unwrap_or_else(|| {
            eprintln!("[error] --addr <host:port> is required");
            std::process::exit(2);
        })
        .parse()
        .unwrap_or_else(|e| {
            eprintln!("[error] bad --addr: {e}");
            std::process::exit(2);
        });
    let graph_path = flag(&args, "--graph").unwrap_or_else(|| {
        eprintln!("[error] --graph <path> is required");
        std::process::exit(2);
    });
    let clients: usize = numeric(&args, "--clients", 8);
    let requests_per_client: usize = numeric(&args, "--requests", 128);
    let seed: u64 = numeric(&args, "--seed", 20_170_419);

    // Register the graph (idempotent across repeated runs against one
    // server: a 409 means an earlier run already registered it).
    let graph_bytes = std::fs::read(&graph_path).unwrap_or_else(|e| {
        eprintln!("[error] cannot read --graph {graph_path}: {e}");
        std::process::exit(2);
    });
    let upload = client::post(addr, "/graphs?id=loadgen", &graph_bytes).unwrap_or_else(|e| {
        eprintln!("[error] upload failed: {e}");
        std::process::exit(2);
    });
    if upload.status != 201 && upload.status != 409 {
        eprintln!("[error] upload returned {}: {}", upload.status, upload.body_utf8());
        std::process::exit(1);
    }
    let graph_doc =
        serde_json::from_str(&client::get(addr, "/graphs/loadgen").unwrap().body_utf8())
            .unwrap_or_else(|e| {
                eprintln!("[error] /graphs/loadgen is not JSON: {e}");
                std::process::exit(1);
            });
    let graph_vertices = graph_doc.get("vertices").and_then(|v| v.as_u64()).unwrap_or(0) as usize;
    let graph_edges = graph_doc.get("edges").and_then(|v| v.as_u64()).unwrap_or(0) as usize;

    // The randomized target pool: small enough that the cache converges to
    // hits, large enough to keep several entries live at once.
    let terrain_targets: Arc<Vec<String>> = Arc::new(
        ["kcore", "degree", "ktruss"]
            .iter()
            .flat_map(|measure| {
                ["svg", "json"].iter().flat_map(move |format| {
                    [(900, 700), (640, 480)].iter().map(move |(w, h)| {
                        format!(
                            "/graphs/loadgen/terrain?measure={measure}&format={format}&width={w}&height={h}"
                        )
                    })
                })
            })
            .collect(),
    );
    let peaks_targets: Arc<Vec<String>> = Arc::new(
        [3usize, 5].iter().map(|count| format!("/graphs/loadgen/peaks?count={count}")).collect(),
    );

    let started = Instant::now();
    let threads: Vec<std::thread::JoinHandle<ClientOutcome>> = (0..clients)
        .map(|client_idx| {
            let terrain_targets = Arc::clone(&terrain_targets);
            let peaks_targets = Arc::clone(&peaks_targets);
            std::thread::spawn(move || {
                let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(client_idx as u64));
                let mut seen_etags: HashMap<String, String> = HashMap::new();
                let mut outcome = ClientOutcome::default();
                for _ in 0..requests_per_client {
                    let roll: f64 = rng.gen();
                    let (target, conditional) = if roll < 0.70 {
                        let target =
                            terrain_targets.choose(&mut rng).expect("non-empty pool").clone();
                        // Revalidate targets we already hold an ETag for,
                        // about a third of the time.
                        let conditional = seen_etags.contains_key(&target) && rng.gen_bool(0.33);
                        (target, conditional)
                    } else if roll < 0.90 {
                        (peaks_targets.choose(&mut rng).expect("non-empty pool").clone(), false)
                    } else {
                        ("/stats".to_string(), false)
                    };
                    let begin = Instant::now();
                    let result = if conditional {
                        let etag = seen_etags.get(&target).expect("checked").clone();
                        client::get_with_headers(addr, &target, &[("If-None-Match", &etag)])
                    } else {
                        client::get(addr, &target)
                    };
                    let elapsed_ms = begin.elapsed().as_secs_f64() * 1_000.0;
                    outcome.latencies_ms.push(elapsed_ms);
                    match result {
                        Ok(response) if response.status == 200 => {
                            if let Some(etag) = response.header("etag") {
                                seen_etags.insert(target, etag.to_string());
                            }
                            outcome.ok += 1;
                        }
                        Ok(response) if response.status == 304 => outcome.not_modified += 1,
                        Ok(_) | Err(_) => outcome.failed += 1,
                    }
                }
                outcome
            })
        })
        .collect();

    let mut latencies_ms: Vec<f64> = Vec::with_capacity(clients * requests_per_client);
    let (mut ok, mut not_modified, mut failed) = (0u64, 0u64, 0u64);
    for thread in threads {
        let outcome = thread.join().expect("client thread panicked");
        latencies_ms.extend(outcome.latencies_ms);
        ok += outcome.ok;
        not_modified += outcome.not_modified;
        failed += outcome.failed;
    }
    let wall_seconds = started.elapsed().as_secs_f64();
    let total_requests = latencies_ms.len() as u64;

    // Scrape the server's own counters for the cache story.
    let stats_doc = serde_json::from_str(&client::get(addr, "/stats").unwrap().body_utf8())
        .expect("/stats is JSON");
    let cache_doc = stats_doc.get("cache").expect("stats has a cache object");
    let scrape = |key: &str| cache_doc.get(key).and_then(|v| v.as_u64()).unwrap_or(0);
    let cache = CacheOutcome {
        hits: scrape("hits"),
        misses: scrape("misses"),
        hit_rate: cache_doc.get("hit_rate").and_then(|v| v.as_f64()).unwrap_or(0.0),
        evictions: scrape("evictions"),
        not_modified: stats_doc.get("not_modified").and_then(|v| v.as_u64()).unwrap_or(0),
    };

    let report = LoadReport {
        schema_version: LOAD_SCHEMA_VERSION,
        created: utc_date(),
        git_rev: git_short_rev(),
        host_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        host_os: std::env::consts::OS.to_string(),
        server_workers: stats_doc.get("workers").and_then(|v| v.as_u64()).unwrap_or(0) as usize,
        clients,
        requests_per_client,
        total_requests,
        ok_responses: ok,
        not_modified_responses: not_modified,
        failed_requests: failed,
        seed,
        graph_vertices,
        graph_edges,
        wall_seconds,
        requests_per_second: if wall_seconds > 0.0 {
            total_requests as f64 / wall_seconds
        } else {
            0.0
        },
        latency_ms: LatencyMillis::from_samples(&latencies_ms),
        cache,
    };

    let json = serde_json::to_string_pretty(&report).expect("serialize load report");
    match flag(&args, "--out") {
        Some(path) => {
            std::fs::write(&path, format!("{json}\n")).unwrap_or_else(|e| {
                eprintln!("[error] cannot write --out {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("[load] wrote {path}");
        }
        None => println!("{json}"),
    }
    eprintln!(
        "[load] {total_requests} requests in {wall_seconds:.2}s ({:.0} req/s) | ok {ok}, 304 {not_modified}, failed {failed} | cache {}/{} hits ({:.0}%) | p50 {:.2}ms p99 {:.2}ms",
        report.requests_per_second,
        report.cache.hits,
        report.cache.hits + report.cache.misses,
        report.cache.hit_rate * 100.0,
        report.latency_ms.p50,
        report.latency_ms.p99,
    );
    if failed > 0 {
        eprintln!("[load] FAIL: {failed} requests failed");
        std::process::exit(1);
    }
}
