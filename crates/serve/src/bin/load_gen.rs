//! Load generator for the terrain server: N client threads each issue M
//! randomized requests (terrain renders across measures/formats/sizes,
//! peaks, stats, and conditional revalidations), then the run is written as
//! a schema'd `LOAD_*.json` report next to the `BENCH_*.json` perf
//! baselines.
//!
//! ```text
//! load_gen --addr <host:port> --graph <path>
//!          [--clients 8] [--requests 128] [--seed 20170419]
//!          [--tiles 0] [--out <path>]
//! ```
//!
//! The request mix is seeded and deterministic per client: mostly terrain
//! renders drawn from a small pool of parameter combinations (so the cache
//! sees both cold misses and plenty of hits), a slice of peaks queries, an
//! occasional `/stats`, and — once a client has seen an ETag for a target —
//! conditional re-requests that exercise the `304` path.
//!
//! `--tiles <weight>` mixes in pan/zoom tile traffic: the base mix weighs
//! terrain 7, peaks 2, stats 1, and tiles join with the given weight (so
//! `--tiles 3` sends ~23% of requests at the tile routes). Each client
//! walks its own viewport — zoom in to a child tile, zoom out to the
//! parent, or pan to a clamped neighbor — the locality pattern a real
//! pan/zoom client produces, so re-visited tiles measure the cache. Tile
//! hits/misses are tallied from the `X-Cache` header into the report's
//! `tiles` object.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

use bench::load_report::{
    CacheOutcome, LatencyMillis, LoadReport, TileOutcome, LOAD_SCHEMA_VERSION,
};
use bench::report::{git_short_rev, utc_date};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serve::client;

fn flag(args: &[String], name: &str) -> Option<String> {
    let prefix = format!("{name}=");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(value) = arg.strip_prefix(&prefix) {
            return Some(value.to_string());
        }
        if arg == name {
            return iter.next().cloned();
        }
    }
    None
}

fn numeric<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag(args, name) {
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("[error] {name} value {raw:?} is not a valid number");
            std::process::exit(2);
        }),
        None => default,
    }
}

/// One client's tally.
#[derive(Default)]
struct ClientOutcome {
    latencies_ms: Vec<f64>,
    ok: u64,
    not_modified: u64,
    failed: u64,
    tile_requests: u64,
    tile_hits: u64,
    tile_misses: u64,
    tile_not_modified: u64,
}

/// One client's pan/zoom viewport walk over the power-of-two tile grid.
/// Kept shallow (zoom <= 4) so the walk re-visits tiles the way a human
/// panning around does — the revisits are what measure the cache.
struct TileWalk {
    zoom: u8,
    tx: u32,
    ty: u32,
}

impl TileWalk {
    const MAX_ZOOM: u8 = 4;

    fn new() -> Self {
        TileWalk { zoom: 0, tx: 0, ty: 0 }
    }

    /// Advance one step (zoom in / zoom out / pan to a neighbor, clamped to
    /// the grid) and return the tile route for the new viewport.
    fn step(&mut self, rng: &mut ChaCha8Rng) -> String {
        match rng.gen_range(0..4u32) {
            // Zoom in: descend into one of the four child tiles.
            0 if self.zoom < Self::MAX_ZOOM => {
                self.zoom += 1;
                self.tx = self.tx * 2 + rng.gen_range(0..2u32);
                self.ty = self.ty * 2 + rng.gen_range(0..2u32);
            }
            // Zoom out: back to the parent tile.
            1 if self.zoom > 0 => {
                self.zoom -= 1;
                self.tx /= 2;
                self.ty /= 2;
            }
            // Pan: one tile over, staying inside the 2^zoom grid.
            _ => {
                let last = (1u32 << self.zoom) - 1;
                match rng.gen_range(0..4u32) {
                    0 => self.tx = self.tx.saturating_sub(1),
                    1 => self.tx = (self.tx + 1).min(last),
                    2 => self.ty = self.ty.saturating_sub(1),
                    _ => self.ty = (self.ty + 1).min(last),
                }
            }
        }
        format!("/graphs/loadgen/tiles/{}/{}/{}", self.zoom, self.tx, self.ty)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr: SocketAddr = flag(&args, "--addr")
        .unwrap_or_else(|| {
            eprintln!("[error] --addr <host:port> is required");
            std::process::exit(2);
        })
        .parse()
        .unwrap_or_else(|e| {
            eprintln!("[error] bad --addr: {e}");
            std::process::exit(2);
        });
    let graph_path = flag(&args, "--graph").unwrap_or_else(|| {
        eprintln!("[error] --graph <path> is required");
        std::process::exit(2);
    });
    let clients: usize = numeric(&args, "--clients", 8);
    let requests_per_client: usize = numeric(&args, "--requests", 128);
    let seed: u64 = numeric(&args, "--seed", 20_170_419);
    let tile_weight: u64 = numeric(&args, "--tiles", 0);

    // Register the graph (idempotent across repeated runs against one
    // server: a 409 means an earlier run already registered it).
    let graph_bytes = std::fs::read(&graph_path).unwrap_or_else(|e| {
        eprintln!("[error] cannot read --graph {graph_path}: {e}");
        std::process::exit(2);
    });
    let upload = client::post(addr, "/graphs?id=loadgen", &graph_bytes).unwrap_or_else(|e| {
        eprintln!("[error] upload failed: {e}");
        std::process::exit(2);
    });
    if upload.status != 201 && upload.status != 409 {
        eprintln!("[error] upload returned {}: {}", upload.status, upload.body_utf8());
        std::process::exit(1);
    }
    let graph_doc =
        serde_json::from_str(&client::get(addr, "/graphs/loadgen").unwrap().body_utf8())
            .unwrap_or_else(|e| {
                eprintln!("[error] /graphs/loadgen is not JSON: {e}");
                std::process::exit(1);
            });
    let graph_vertices = graph_doc.get("vertices").and_then(|v| v.as_u64()).unwrap_or(0) as usize;
    let graph_edges = graph_doc.get("edges").and_then(|v| v.as_u64()).unwrap_or(0) as usize;

    // The randomized target pool: small enough that the cache converges to
    // hits, large enough to keep several entries live at once.
    let terrain_targets: Arc<Vec<String>> = Arc::new(
        ["kcore", "degree", "ktruss"]
            .iter()
            .flat_map(|measure| {
                ["svg", "json"].iter().flat_map(move |format| {
                    [(900, 700), (640, 480)].iter().map(move |(w, h)| {
                        format!(
                            "/graphs/loadgen/terrain?measure={measure}&format={format}&width={w}&height={h}"
                        )
                    })
                })
            })
            .collect(),
    );
    let peaks_targets: Arc<Vec<String>> = Arc::new(
        [3usize, 5].iter().map(|count| format!("/graphs/loadgen/peaks?count={count}")).collect(),
    );

    let started = Instant::now();
    let threads: Vec<std::thread::JoinHandle<ClientOutcome>> = (0..clients)
        .map(|client_idx| {
            let terrain_targets = Arc::clone(&terrain_targets);
            let peaks_targets = Arc::clone(&peaks_targets);
            std::thread::spawn(move || {
                let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(client_idx as u64));
                let mut seen_etags: HashMap<String, String> = HashMap::new();
                let mut outcome = ClientOutcome::default();
                let mut walk = TileWalk::new();
                // Base mix terrain:peaks:stats = 7:2:1; tiles join with
                // their own weight so `--tiles 0` reproduces the old mix.
                let total_weight = 10 + tile_weight;
                for _ in 0..requests_per_client {
                    let roll = rng.gen_range(0..total_weight);
                    let (target, conditional, is_tile) = if roll < 7 {
                        let target =
                            terrain_targets.choose(&mut rng).expect("non-empty pool").clone();
                        // Revalidate targets we already hold an ETag for,
                        // about a third of the time.
                        let conditional = seen_etags.contains_key(&target) && rng.gen_bool(0.33);
                        (target, conditional, false)
                    } else if roll < 9 {
                        (
                            peaks_targets.choose(&mut rng).expect("non-empty pool").clone(),
                            false,
                            false,
                        )
                    } else if roll < 10 {
                        ("/stats".to_string(), false, false)
                    } else {
                        let target = walk.step(&mut rng);
                        let conditional = seen_etags.contains_key(&target) && rng.gen_bool(0.33);
                        (target, conditional, true)
                    };
                    let begin = Instant::now();
                    let result = if conditional {
                        let etag = seen_etags.get(&target).expect("checked").clone();
                        client::get_with_headers(addr, &target, &[("If-None-Match", &etag)])
                    } else {
                        client::get(addr, &target)
                    };
                    let elapsed_ms = begin.elapsed().as_secs_f64() * 1_000.0;
                    outcome.latencies_ms.push(elapsed_ms);
                    if is_tile {
                        outcome.tile_requests += 1;
                    }
                    match result {
                        Ok(response) if response.status == 200 => {
                            if is_tile {
                                match response.header("x-cache") {
                                    Some("hit") => outcome.tile_hits += 1,
                                    Some("miss") => outcome.tile_misses += 1,
                                    _ => {}
                                }
                            }
                            if let Some(etag) = response.header("etag") {
                                seen_etags.insert(target, etag.to_string());
                            }
                            outcome.ok += 1;
                        }
                        Ok(response) if response.status == 304 => {
                            if is_tile {
                                outcome.tile_not_modified += 1;
                            }
                            outcome.not_modified += 1;
                        }
                        Ok(_) | Err(_) => outcome.failed += 1,
                    }
                }
                outcome
            })
        })
        .collect();

    let mut latencies_ms: Vec<f64> = Vec::with_capacity(clients * requests_per_client);
    let (mut ok, mut not_modified, mut failed) = (0u64, 0u64, 0u64);
    let mut tiles = TileOutcome::default();
    for thread in threads {
        let outcome = thread.join().expect("client thread panicked");
        latencies_ms.extend(outcome.latencies_ms);
        ok += outcome.ok;
        not_modified += outcome.not_modified;
        failed += outcome.failed;
        tiles.requests += outcome.tile_requests;
        tiles.hits += outcome.tile_hits;
        tiles.misses += outcome.tile_misses;
        tiles.not_modified += outcome.tile_not_modified;
    }
    if tiles.hits + tiles.misses > 0 {
        tiles.hit_rate = tiles.hits as f64 / (tiles.hits + tiles.misses) as f64;
    }
    let wall_seconds = started.elapsed().as_secs_f64();
    let total_requests = latencies_ms.len() as u64;

    // Scrape the server's own counters for the cache story.
    let stats_doc = serde_json::from_str(&client::get(addr, "/stats").unwrap().body_utf8())
        .expect("/stats is JSON");
    let cache_doc = stats_doc.get("cache").expect("stats has a cache object");
    let scrape = |key: &str| cache_doc.get(key).and_then(|v| v.as_u64()).unwrap_or(0);
    let cache = CacheOutcome {
        hits: scrape("hits"),
        misses: scrape("misses"),
        hit_rate: cache_doc.get("hit_rate").and_then(|v| v.as_f64()).unwrap_or(0.0),
        evictions: scrape("evictions"),
        not_modified: stats_doc.get("not_modified").and_then(|v| v.as_u64()).unwrap_or(0),
    };

    let report = LoadReport {
        schema_version: LOAD_SCHEMA_VERSION,
        created: utc_date(),
        git_rev: git_short_rev(),
        host_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        host_os: std::env::consts::OS.to_string(),
        server_workers: stats_doc.get("workers").and_then(|v| v.as_u64()).unwrap_or(0) as usize,
        clients,
        requests_per_client,
        total_requests,
        ok_responses: ok,
        not_modified_responses: not_modified,
        failed_requests: failed,
        seed,
        graph_vertices,
        graph_edges,
        wall_seconds,
        requests_per_second: if wall_seconds > 0.0 {
            total_requests as f64 / wall_seconds
        } else {
            0.0
        },
        latency_ms: LatencyMillis::from_samples(&latencies_ms),
        cache,
        tiles,
    };

    let json = serde_json::to_string_pretty(&report).expect("serialize load report");
    match flag(&args, "--out") {
        Some(path) => {
            std::fs::write(&path, format!("{json}\n")).unwrap_or_else(|e| {
                eprintln!("[error] cannot write --out {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("[load] wrote {path}");
        }
        None => println!("{json}"),
    }
    eprintln!(
        "[load] {total_requests} requests in {wall_seconds:.2}s ({:.0} req/s) | ok {ok}, 304 {not_modified}, failed {failed} | cache {}/{} hits ({:.0}%) | p50 {:.2}ms p99 {:.2}ms",
        report.requests_per_second,
        report.cache.hits,
        report.cache.hits + report.cache.misses,
        report.cache.hit_rate * 100.0,
        report.latency_ms.p50,
        report.latency_ms.p99,
    );
    if report.tiles.requests > 0 {
        eprintln!(
            "[load] tiles: {} requests | {}/{} hits ({:.0}%) | 304 {}",
            report.tiles.requests,
            report.tiles.hits,
            report.tiles.hits + report.tiles.misses,
            report.tiles.hit_rate * 100.0,
            report.tiles.not_modified,
        );
    }
    if failed > 0 {
        eprintln!("[load] FAIL: {failed} requests failed");
        std::process::exit(1);
    }
}
