//! Scripted smoke check against a *running* terrain server: upload a graph,
//! render it through two exporter backends, query peaks and stats, and
//! verify the cache protocol (miss → hit byte-equality, ETag stability,
//! `If-None-Match` → 304). CI boots `terrain_server` on an ephemeral port,
//! runs this binary, then byte-diffs the saved `terrain.svg` against a
//! direct `quickstart` render of the same snapshot — closing the loop that
//! the *served* artifact equals the *library* artifact. The script also
//! exercises the dynamic-graph routes: it streams insert/delete batches at
//! a fixed base graph and byte-diffs the mutated render against a
//! from-scratch upload of the final edge list (saved as
//! `terrain_delta.svg` / `terrain_delta_rebuilt.svg` for CI to re-diff),
//! and the viewport-tile routes: one tile must miss then hit
//! byte-identically, answer `If-None-Match` with a 304, 404 past the grid,
//! and stream a `GTSC` scene document (saved as `tile_1_0_0.svg` /
//! `scene.gtsc` so CI can byte-diff a re-requested tile).
//!
//! ```text
//! route_smoke --addr <host:port> --graph <path> [--out-dir <dir>]
//! ```
//!
//! Exits 0 and prints `route smoke: PASS` only if every step held.

use std::net::SocketAddr;
use std::path::PathBuf;

use serve::client;

fn flag(args: &[String], name: &str) -> Option<String> {
    let prefix = format!("{name}=");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(value) = arg.strip_prefix(&prefix) {
            return Some(value.to_string());
        }
        if arg == name {
            return iter.next().cloned();
        }
    }
    None
}

fn fail(step: &str, detail: impl std::fmt::Display) -> ! {
    eprintln!("route smoke: FAIL at {step}: {detail}");
    std::process::exit(1);
}

fn expect_status(step: &str, response: &client::HttpResponse, status: u16) {
    if response.status != status {
        fail(
            step,
            format!("expected status {status}, got {} with body {}", response.status, {
                let body = response.body_utf8();
                body.chars().take(300).collect::<String>()
            }),
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr: SocketAddr = flag(&args, "--addr")
        .unwrap_or_else(|| fail("args", "--addr <host:port> is required"))
        .parse()
        .unwrap_or_else(|e| fail("args", format!("bad --addr: {e}")));
    let graph_path =
        flag(&args, "--graph").unwrap_or_else(|| fail("args", "--graph <path> is required"));
    let out_dir = flag(&args, "--out-dir").map(PathBuf::from);
    let graph_bytes = std::fs::read(&graph_path)
        .unwrap_or_else(|e| fail("read graph", format!("{graph_path}: {e}")));

    // 1. Health first: the server is actually up.
    let health = client::get(addr, "/healthz").unwrap_or_else(|e| fail("healthz", e));
    expect_status("healthz", &health, 200);

    // 2. Upload the graph under a fixed id.
    let upload =
        client::post(addr, "/graphs?id=smoke", &graph_bytes).unwrap_or_else(|e| fail("upload", e));
    expect_status("upload", &upload, 201);
    if !upload.body_utf8().contains("\"id\":\"smoke\"") {
        fail("upload", format!("body does not echo the id: {}", upload.body_utf8()));
    }

    // 3. First terrain render must be a cache miss with an ETag.
    let target = "/graphs/smoke/terrain?measure=kcore&format=svg";
    let miss = client::get(addr, target).unwrap_or_else(|e| fail("terrain miss", e));
    expect_status("terrain miss", &miss, 200);
    if miss.header("x-cache") != Some("miss") {
        fail("terrain miss", format!("X-Cache = {:?}, expected miss", miss.header("x-cache")));
    }
    let etag =
        miss.header("etag").unwrap_or_else(|| fail("terrain miss", "no ETag header")).to_string();
    if miss.body.is_empty() || !miss.body_utf8().contains("<svg") {
        fail("terrain miss", "body is not an SVG document");
    }

    // 4. The same request again: a hit, byte-identical, same ETag.
    let hit = client::get(addr, target).unwrap_or_else(|e| fail("terrain hit", e));
    expect_status("terrain hit", &hit, 200);
    if hit.header("x-cache") != Some("hit") {
        fail("terrain hit", format!("X-Cache = {:?}, expected hit", hit.header("x-cache")));
    }
    if hit.body != miss.body {
        fail("terrain hit", "cache hit bytes differ from the miss render");
    }
    if hit.header("etag") != Some(etag.as_str()) {
        fail("terrain hit", "ETag changed between miss and hit");
    }

    // 5. Conditional request: 304, no body.
    let conditional = client::get_with_headers(addr, target, &[("If-None-Match", &etag)])
        .unwrap_or_else(|e| fail("conditional", e));
    expect_status("conditional", &conditional, 304);
    if !conditional.body.is_empty() {
        fail("conditional", "304 must not carry a body");
    }

    // 6. A second exporter backend over the same session defaults.
    let json_render = client::get(addr, "/graphs/smoke/terrain?measure=kcore&format=json")
        .unwrap_or_else(|e| fail("terrain json", e));
    expect_status("terrain json", &json_render, 200);
    serde_json::from_str(&json_render.body_utf8())
        .unwrap_or_else(|e| fail("terrain json", format!("body is not JSON: {e}")));

    // 7. Peaks.
    let peaks =
        client::get(addr, "/graphs/smoke/peaks?count=3").unwrap_or_else(|e| fail("peaks", e));
    expect_status("peaks", &peaks, 200);
    let peaks_doc = serde_json::from_str(&peaks.body_utf8())
        .unwrap_or_else(|e| fail("peaks", format!("body is not JSON: {e}")));
    if peaks_doc.get("peaks").and_then(|p| p.as_array()).is_none() {
        fail("peaks", "no peaks array in response");
    }

    // 8. A bad measure is a structured 400 that lists the accepted names.
    let bad = client::get(addr, "/graphs/smoke/terrain?measure=bogus")
        .unwrap_or_else(|e| fail("bad measure", e));
    expect_status("bad measure", &bad, 400);
    if !bad.body_utf8().contains("kcore") {
        fail("bad measure", "400 body should list known measures");
    }

    // 9. Stats must reflect the traffic above: at least one hit, one miss.
    let stats = client::get(addr, "/stats").unwrap_or_else(|e| fail("stats", e));
    expect_status("stats", &stats, 200);
    let stats_doc = serde_json::from_str(&stats.body_utf8())
        .unwrap_or_else(|e| fail("stats", format!("body is not JSON: {e}")));
    let cache = stats_doc.get("cache").unwrap_or_else(|| fail("stats", "no cache object"));
    let hits = cache.get("hits").and_then(|v| v.as_u64()).unwrap_or(0);
    let misses = cache.get("misses").and_then(|v| v.as_u64()).unwrap_or(0);
    if hits < 1 || misses < 1 {
        fail("stats", format!("expected hits >= 1 and misses >= 1, got {hits}/{misses}"));
    }

    // 10. Tiles: a pan/zoom tile misses, hits byte-identically, honors
    // If-None-Match, and out-of-grid keys are 404s decided before any
    // render. The whole-scene GTSC stream must carry its magic.
    let tile_target = "/graphs/smoke/tiles/1/0/0?measure=kcore";
    let tile_miss = client::get(addr, tile_target).unwrap_or_else(|e| fail("tile miss", e));
    expect_status("tile miss", &tile_miss, 200);
    if tile_miss.header("x-cache") != Some("miss") {
        fail("tile miss", format!("X-Cache = {:?}, expected miss", tile_miss.header("x-cache")));
    }
    if !tile_miss.body_utf8().starts_with("<svg") {
        fail("tile miss", "tile body is not an SVG document");
    }
    let tile_etag =
        tile_miss.header("etag").unwrap_or_else(|| fail("tile miss", "no ETag")).to_string();
    let tile_hit = client::get(addr, tile_target).unwrap_or_else(|e| fail("tile hit", e));
    expect_status("tile hit", &tile_hit, 200);
    if tile_hit.header("x-cache") != Some("hit") {
        fail("tile hit", format!("X-Cache = {:?}, expected hit", tile_hit.header("x-cache")));
    }
    if tile_hit.body != tile_miss.body {
        fail("tile hit", "cache hit bytes differ from the miss render");
    }
    let tile_conditional =
        client::get_with_headers(addr, tile_target, &[("If-None-Match", &tile_etag)])
            .unwrap_or_else(|e| fail("tile conditional", e));
    expect_status("tile conditional", &tile_conditional, 304);
    if !tile_conditional.body.is_empty() {
        fail("tile conditional", "304 must not carry a body");
    }
    for bad_target in ["/graphs/smoke/tiles/99/0/0", "/graphs/smoke/tiles/1/2/0"] {
        let out_of_grid =
            client::get(addr, bad_target).unwrap_or_else(|e| fail("tile out of grid", e));
        expect_status("tile out of grid", &out_of_grid, 404);
        if !out_of_grid.body_utf8().contains("outside the grid") {
            fail("tile out of grid", format!("unexpected body: {}", out_of_grid.body_utf8()));
        }
    }
    let scene =
        client::get(addr, "/graphs/smoke/scene?measure=kcore").unwrap_or_else(|e| fail("scene", e));
    expect_status("scene", &scene, 200);
    if !scene.body.starts_with(b"GTSC") {
        fail("scene", "scene body does not start with the GTSC magic");
    }
    if scene.header("content-type") != Some("application/octet-stream") {
        fail("scene", format!("content-type = {:?}", scene.header("content-type")));
    }

    // 11. Dynamic graphs: upload a small fixed base, stream an insert and a
    // delete batch at it, and check the mutated graph renders
    // byte-identically to a from-scratch upload of the final edge list.
    let base = client::post(addr, "/graphs?id=delta-base", b"0 1\n1 2\n2 0\n0 3\n")
        .unwrap_or_else(|e| fail("delta base upload", e));
    expect_status("delta base upload", &base, 201);
    let pre = client::get(addr, "/graphs/delta-base/terrain")
        .unwrap_or_else(|e| fail("pre-delta render", e));
    expect_status("pre-delta render", &pre, 200);
    let pre_etag =
        pre.header("etag").unwrap_or_else(|| fail("pre-delta render", "no ETag")).to_string();

    let insert = client::post(addr, "/graphs/delta-base/deltas", b"3 4\n1 3\n")
        .unwrap_or_else(|e| fail("delta insert", e));
    expect_status("delta insert", &insert, 200);
    if !insert.body_utf8().contains("\"structural\":true") {
        fail("delta insert", format!("expected a structural delta: {}", insert.body_utf8()));
    }
    let delete = client::post(addr, "/graphs/delta-base/deltas?op=delete", b"0 3\n")
        .unwrap_or_else(|e| fail("delta delete", e));
    expect_status("delta delete", &delete, 200);

    let mutated = client::get(addr, "/graphs/delta-base/terrain")
        .unwrap_or_else(|e| fail("post-delta render", e));
    expect_status("post-delta render", &mutated, 200);
    if mutated.header("x-cache") != Some("miss") {
        fail("post-delta render", "a mutated graph must not serve stale cached bytes");
    }
    if mutated.header("etag") == Some(pre_etag.as_str()) {
        fail("post-delta render", "the ETag must change when the graph mutates");
    }
    // Final edge list after both batches: the base plus {3-4, 1-3} minus {0-3}.
    let rebuilt = client::post(addr, "/graphs?id=delta-rebuilt", b"0 1\n1 2\n2 0\n1 3\n3 4\n")
        .unwrap_or_else(|e| fail("rebuilt upload", e));
    expect_status("rebuilt upload", &rebuilt, 201);
    let direct = client::get(addr, "/graphs/delta-rebuilt/terrain")
        .unwrap_or_else(|e| fail("rebuilt render", e));
    expect_status("rebuilt render", &direct, 200);
    if direct.body != mutated.body {
        fail("delta coherence", "incremental and from-scratch renders disagree byte-wise");
    }

    // 12. DELETE unregisters; a second DELETE is a 404.
    let deleted =
        client::delete(addr, "/graphs/delta-rebuilt").unwrap_or_else(|e| fail("delete graph", e));
    expect_status("delete graph", &deleted, 200);
    let gone =
        client::delete(addr, "/graphs/delta-rebuilt").unwrap_or_else(|e| fail("delete again", e));
    expect_status("delete again", &gone, 404);
    let lookup =
        client::get(addr, "/graphs/delta-rebuilt").unwrap_or_else(|e| fail("deleted lookup", e));
    expect_status("deleted lookup", &lookup, 404);

    // 13. Save artifacts for the CI byte-diff against a direct render (and
    // the tile/scene re-request diffs).
    if let Some(dir) = out_dir {
        std::fs::create_dir_all(&dir).unwrap_or_else(|e| fail("out-dir", e));
        std::fs::write(dir.join("terrain.svg"), &miss.body)
            .unwrap_or_else(|e| fail("write svg", e));
        std::fs::write(dir.join("tile_1_0_0.svg"), &tile_miss.body)
            .unwrap_or_else(|e| fail("write tile svg", e));
        std::fs::write(dir.join("scene.gtsc"), &scene.body)
            .unwrap_or_else(|e| fail("write scene", e));
        std::fs::write(dir.join("terrain.json"), &json_render.body)
            .unwrap_or_else(|e| fail("write json", e));
        std::fs::write(dir.join("peaks.json"), &peaks.body)
            .unwrap_or_else(|e| fail("write peaks", e));
        std::fs::write(dir.join("terrain_delta.svg"), &mutated.body)
            .unwrap_or_else(|e| fail("write delta svg", e));
        std::fs::write(dir.join("terrain_delta_rebuilt.svg"), &direct.body)
            .unwrap_or_else(|e| fail("write rebuilt svg", e));
    }

    println!("route smoke: PASS ({} byte SVG, {hits} hits / {misses} misses)", miss.body.len());
}
