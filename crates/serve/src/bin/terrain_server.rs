//! The terrain server binary.
//!
//! ```text
//! terrain_server [--addr 127.0.0.1:7878] [--addr-file <path>]
//!                [--workers N] [--cache-entries N] [--cache-bytes N]
//!                [--graph <path> ...]
//! ```
//!
//! `--addr 127.0.0.1:0` binds an ephemeral port; `--addr-file` writes the
//! actually-bound address to a file once listening, which is how the CI
//! smoke script finds the server without racing the log output. Each
//! `--graph` preloads a file into the registry under its file stem — a v3
//! binary snapshot opens memory-mapped (zero-copy), any other format loads
//! through `GraphSource`.

use std::path::Path;
use std::sync::Arc;

use graph_terrain::SharedGraph;
use serve::state::{AppState, ServerConfig};
use serve::Server;
use ugraph::io::GraphSource;

fn flag(args: &[String], name: &str) -> Option<String> {
    let prefix = format!("{name}=");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(value) = arg.strip_prefix(&prefix) {
            return Some(value.to_string());
        }
        if arg == name {
            return iter.next().cloned();
        }
    }
    None
}

fn flag_values(args: &[String], name: &str) -> Vec<String> {
    let prefix = format!("{name}=");
    let mut values = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(value) = arg.strip_prefix(&prefix) {
            values.push(value.to_string());
        } else if arg == name {
            if let Some(value) = iter.next() {
                values.push(value.clone());
            }
        }
    }
    values
}

fn numeric<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag(args, name) {
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("[error] {name} value {raw:?} is not a valid number");
            std::process::exit(2);
        }),
        None => default,
    }
}

/// Open a graph file: v3 snapshots map zero-copy, everything else parses.
fn open_graph(path: &str) -> SharedGraph {
    match SharedGraph::open_mapped(path) {
        Ok(graph) => graph,
        Err(_) => {
            let parsed = GraphSource::auto(path).load().unwrap_or_else(|e| {
                eprintln!("[error] failed to load --graph {path}: {e}");
                std::process::exit(2);
            });
            SharedGraph::new(parsed.graph)
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        workers: numeric(&args, "--workers", defaults.workers),
        cache_entries: numeric(&args, "--cache-entries", defaults.cache_entries),
        cache_bytes: numeric(&args, "--cache-bytes", defaults.cache_bytes),
        ..defaults
    };
    let addr = flag(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".to_string());

    let state = Arc::new(AppState::new(config));
    for path in flag_values(&args, "--graph") {
        let id = Path::new(&path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "graph".to_string())
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == '-' { c } else { '-' })
            .collect::<String>();
        let graph = open_graph(&path);
        let entry = state.insert_graph(Some(id), graph).unwrap_or_else(|e| {
            eprintln!("[error] cannot register --graph {path}: {e}");
            std::process::exit(2);
        });
        eprintln!(
            "[graph] {} <- {path} ({} vertices, {} edges, {})",
            entry.id,
            entry.graph.storage().vertex_count(),
            entry.graph.storage().edge_count(),
            entry.graph.backend_name(),
        );
    }

    let handle = Server::bind_with_state(addr.as_str(), state).unwrap_or_else(|e| {
        eprintln!("[error] cannot bind {addr}: {e}");
        std::process::exit(2);
    });

    if let Some(path) = flag(&args, "--addr-file") {
        if let Err(e) = std::fs::write(&path, handle.addr().to_string()) {
            eprintln!("[error] cannot write --addr-file {path}: {e}");
            std::process::exit(2);
        }
    }
    println!("serving terrains on http://{}", handle.addr());

    // Serve until killed; the accept loop and workers own all the work.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
