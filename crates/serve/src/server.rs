//! The TCP front: an accept loop feeding a bounded pool of worker threads.
//!
//! Deliberately `std`-only — `TcpListener::accept` on a dedicated thread, a
//! `sync_channel` as the bounded hand-off queue, and N workers each owning
//! one connection at a time (connection-per-request; every response closes).
//! Backpressure is the channel bound: when all workers are busy and the
//! queue is full, the accept thread blocks and the kernel's listen backlog
//! absorbs the burst.
//!
//! Shutdown is cooperative: [`ServerHandle::shutdown`] raises a flag and
//! pokes the listener with a loopback connect so `accept` wakes up,
//! observes the flag, and drops the sender — each worker drains the queue
//! and exits on the channel's disconnect. Dropping the handle shuts down
//! too, so tests cannot leak servers.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::{io, thread};

use crate::error::http_error_response;
use crate::http::read_request;
use crate::routes;
use crate::state::{AppState, ServerConfig};

/// Constructors for a running server.
pub struct Server;

impl Server {
    /// Bind and start serving with fresh [`AppState`]. `addr` may use port
    /// 0 for an ephemeral port; the bound address is on the handle.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<ServerHandle> {
        Server::bind_with_state(addr, Arc::new(AppState::new(config)))
    }

    /// Bind and start serving over pre-built state (tests pre-register
    /// graphs this way).
    pub fn bind_with_state(
        addr: impl ToSocketAddrs,
        state: Arc<AppState>,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));

        let (sender, receiver) = sync_channel::<TcpStream>(state.config.pending_connections.max(1));
        let receiver = Arc::new(Mutex::new(receiver));

        let workers: Vec<JoinHandle<()>> = (0..state.config.workers.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let state = Arc::clone(&state);
                thread::Builder::new()
                    .name(format!("terrain-worker-{i}"))
                    .spawn(move || worker_loop(&state, &receiver))
                    .expect("spawn worker thread")
            })
            .collect();

        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            thread::Builder::new()
                .name("terrain-accept".to_string())
                .spawn(move || {
                    // `sender` moves in here; dropping it on exit disconnects
                    // the workers.
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        match stream {
                            Ok(stream) => {
                                if sender.send(stream).is_err() {
                                    break;
                                }
                            }
                            // Transient accept errors (aborted handshakes,
                            // fd pressure) must not kill the server.
                            Err(_) => continue,
                        }
                    }
                })
                .expect("spawn accept thread")
        };

        Ok(ServerHandle {
            addr: local_addr,
            state,
            shutdown,
            accept_thread: Some(accept_thread),
            workers,
        })
    }
}

fn worker_loop(state: &AppState, receiver: &Mutex<Receiver<TcpStream>>) {
    loop {
        // Hold the receiver lock only for the dequeue, never during a
        // request.
        let stream = match receiver.lock().expect("worker queue lock").recv() {
            Ok(stream) => stream,
            Err(_) => return, // sender dropped: shutdown
        };
        handle_connection(state, stream);
    }
}

/// One connection end to end: parse, dispatch, respond, close. Any socket
/// failure on the way out is the peer's problem — never this thread's.
fn handle_connection(state: &AppState, stream: TcpStream) {
    state.in_flight.fetch_add(1, Ordering::SeqCst);
    let _ = stream.set_read_timeout(Some(state.config.read_timeout));
    let _ = stream.set_nodelay(true);

    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => {
            state.dropped_connections.fetch_add(1, Ordering::Relaxed);
            state.in_flight.fetch_sub(1, Ordering::SeqCst);
            return;
        }
    });
    let response = match read_request(&mut reader, state.config.max_body_bytes) {
        Ok(request) => Some(routes::handle(state, &request)),
        Err(e) => http_error_response(&e),
    };
    match response {
        Some(response) => {
            if response.status >= 400 {
                state.error_responses.fetch_add(1, Ordering::Relaxed);
            }
            state.requests_served.fetch_add(1, Ordering::Relaxed);
            let mut writer = BufWriter::new(&stream);
            // The peer may have vanished; writing is best-effort.
            let _ = response.write_to(&mut writer).and_then(|()| writer.flush());
        }
        None => {
            state.dropped_connections.fetch_add(1, Ordering::Relaxed);
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
    state.in_flight.fetch_sub(1, Ordering::SeqCst);
}

/// A running server: its bound address, its state, and the threads behind
/// it. Dropping the handle stops the server.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<AppState>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (tests read counters and pre-register graphs).
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Stop accepting, drain queued connections, and join every thread.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}
