//! Terrain-as-a-service: a concurrent multi-session HTTP server over the
//! terrain pipeline, with a byte-exact artifact cache.
//!
//! The crate is `std`-only by design — `TcpListener` plus a bounded pool of
//! worker threads ([`server`]) — because the deployment target is the same
//! offline container the rest of the workspace builds in. What makes a
//! *cache* (rather than a best-effort memo) possible is the pipeline's
//! determinism contract: the same graph and render settings produce
//! bit-identical artifacts at every thread count, so
//!
//! * a cache hit returns exactly the bytes a fresh render would have
//!   produced (the coherence test races ≥8 client threads against a serial
//!   reference to prove it), and
//! * the strong ETag can be computed from the canonical cache *key* alone,
//!   which lets `If-None-Match` short-circuit to `304 Not Modified` before
//!   any render work.
//!
//! Module map: [`http`] (hand-rolled request/response layer with typed
//! errors), [`error`] (structured JSON API errors), [`cache`] (bounded LRU
//! keyed on canonical render parameters), [`state`] (graph registry +
//! shared counters), [`routes`] (the handlers), [`server`] (accept loop and
//! worker pool), [`client`] (the matching minimal client).
//!
//! ```no_run
//! use serve::{Server, ServerConfig};
//!
//! let handle = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
//! println!("serving terrains on http://{}", handle.addr());
//! # handle.shutdown();
//! ```

pub mod cache;
pub mod client;
pub mod error;
pub mod http;
pub mod routes;
pub mod server;
pub mod state;

pub use cache::{etag_for_key, CacheStats, CachedArtifact, LruCache};
pub use error::ApiError;
pub use http::{HttpError, Method, Request, Response};
pub use server::{Server, ServerHandle};
pub use state::{AppState, GraphEntry, ServerConfig, StageTotals};
