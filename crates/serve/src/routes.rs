//! The route table and handlers.
//!
//! ```text
//! POST   /graphs[?id=&format=]          register a graph (body = graph file)
//! GET    /graphs                        list registered graphs
//! GET    /graphs/{id}                   one graph's facts
//! POST   /graphs/{id}/deltas[?op=&format=]  mutate a graph in place (body = edge batch)
//! DELETE /graphs/{id}                   unregister a graph
//! GET    /graphs/{id}/terrain?...       render a terrain artifact (cached)
//! GET    /graphs/{id}/peaks?...         peak extraction as JSON (cached)
//! GET    /graphs/{id}/tiles/{z}/{tx}/{ty}?...  one pan/zoom tile (cached)
//! GET    /graphs/{id}/scene?...         binary `GTSC` scene document (cached)
//! GET    /stats                         cache/timing/traffic counters
//! GET    /healthz                       liveness probe
//! ```
//!
//! Tiles: the layout domain is a power-of-two grid (`2^z × 2^z` tiles at
//! zoom `z`, south-west origin) over the server's fixed default layout and
//! LOD configurations, so every client shares one grid and one cache. A
//! tile request takes `measure`, `threads`, `format` (`svg` | `scene`) and
//! `size` (square tile edge in px, SVG only); keys past the grid (zoom
//! above the scene's maximum, `tx`/`ty` at or above `2^zoom`) are 404s.
//! Tile bytes depend only on the graph, its delta generation, the measure
//! and the key — *not* on `budget`/`levels` (tiles render the unsimplified
//! tree) and not on `threads` — which is exactly what the cache key embeds.
//!
//! Deltas: the body is an edge batch in any [`GraphFormat`] (same `format`
//! parameter as uploads) and `op` (`insert` | `delete` | `reweight`,
//! default `insert`) is applied to every edge in it. A structural delta
//! compacts into a fresh graph registered under the same id and evicts the
//! id's cached artifacts — their ETags change because the bytes do. A no-op
//! batch (all redundant) leaves the graph, the cache, and every ETag
//! untouched. `DELETE /graphs/{id}` likewise evicts the id's artifacts so a
//! later upload under the same id cannot alias stale bytes.
//!
//! Render parameters: `measure` (kcore | degree | pagerank | closeness |
//! betweenness | ktruss | edge-triangles), `samples`/`seed` (betweenness),
//! `format` (exporter backend), `width`/`height` (SVG px), `color`
//! (height | degree), `budget` (`none` or a node count), `levels`,
//! `threads` (parallelism — deliberately *excluded* from the cache key:
//! the pipeline's determinism contract makes artifacts byte-identical at
//! every thread count, so a serial render and a wide render share one
//! cache entry).
//!
//! A v3 binary snapshot upload (`GTSB` magic) registers as a *mapped*
//! graph — the CSR arrays are served zero-copy out of the uploaded buffer,
//! shared by every concurrent session. Anything else goes through
//! [`GraphSource`] with the `format` parameter (default `edgelist`).

use std::sync::Arc;

use crate::cache::{etag_for_key, CachedArtifact};
use crate::error::{json_f64, json_string, ApiError};
use crate::http::{Method, Request, Response};
use crate::state::{AppState, GraphEntry};
use graph_terrain::{
    FieldKind, LodConfig, Measure, SharedGraph, SimplificationConfig, SvgSize, TerrainPipeline,
    TileKey, MEASURES,
};
use measures::Parallelism;
use terrain::{exporter_by_name_sized, highest_peaks, peaks_at_alpha, ColorScheme, Exporter, Peak};
use ugraph::delta::{DeltaApplyStats, DeltaOp, GraphDelta};
use ugraph::io::{GraphFormat, GraphSource};

/// Most peak member ids echoed inline per peak (the full count is always
/// reported; huge member lists would dwarf the artifact itself).
const MAX_PEAK_MEMBERS: usize = 64;

/// Dispatch a parsed request; never panics, never leaks a raw error.
pub fn handle(state: &AppState, req: &Request) -> Response {
    match route(state, req) {
        Ok(response) => response,
        Err(e) => e.into_response(),
    }
}

fn route(state: &AppState, req: &Request) -> Result<Response, ApiError> {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method, segments.as_slice()) {
        (Method::Post, ["graphs"]) => upload_graph(state, req),
        (Method::Get, ["graphs"]) => Ok(list_graphs(state)),
        (Method::Get, ["graphs", id]) => graph_info(state, id),
        (Method::Post, ["graphs", id, "deltas"]) => post_delta(state, req, id),
        (Method::Delete, ["graphs", id]) => delete_graph(state, id),
        (Method::Get, ["graphs", id, "terrain"]) => terrain(state, req, id),
        (Method::Get, ["graphs", id, "peaks"]) => peaks(state, req, id),
        (Method::Get, ["graphs", id, "tiles", zoom, tx, ty]) => tile(state, req, id, zoom, tx, ty),
        (Method::Get, ["graphs", id, "scene"]) => scene_document(state, req, id),
        (Method::Get, ["stats"]) => Ok(stats(state)),
        (Method::Get, ["healthz"]) => Ok(Response::with_body(200, "text/plain", b"ok\n".to_vec())),
        _ => Err(ApiError::not_found(format!("no route for {} {}", req.method, req.path))),
    }
}

// ---------------------------------------------------------------- registry

fn upload_graph(state: &AppState, req: &Request) -> Result<Response, ApiError> {
    if req.body.is_empty() {
        return Err(ApiError::new(400, "empty_body", "graph upload requires a non-empty body"));
    }
    let graph = if is_v3_snapshot(&req.body) {
        SharedGraph::from_snapshot_bytes(&req.body)?
    } else {
        let parsed = GraphSource::reader(std::io::Cursor::new(req.body.clone()))
            .with_format(graph_format_param(req)?)
            .load()
            .map_err(|e| ApiError::new(400, "invalid_graph", e.to_string()))?;
        SharedGraph::new(parsed.graph)
    };
    let entry = state.insert_graph(req.query_param("id").map(str::to_string), graph)?;
    Ok(Response::json(201, graph_json(&entry)).header("Location", &format!("/graphs/{}", entry.id)))
}

/// The v3 snapshot magic + version sniff (`GTSB` then a little-endian 3).
fn is_v3_snapshot(body: &[u8]) -> bool {
    body.len() >= 8 && &body[..4] == b"GTSB" && body[4..8] == [3, 0, 0, 0]
}

/// The `format` query parameter (default `edgelist`), shared by uploads
/// and delta batches.
fn graph_format_param(req: &Request) -> Result<GraphFormat, ApiError> {
    match req.query_param("format") {
        Some(name) => GraphFormat::from_name(name).ok_or_else(|| {
            ApiError::invalid_parameter(
                "format",
                format!(
                    "unknown graph format {name:?}; expected one of: {}",
                    GraphFormat::all().iter().map(|f| f.name()).collect::<Vec<_>>().join(", ")
                ),
            )
        }),
        None => Ok(GraphFormat::EdgeList),
    }
}

/// `POST /graphs/{id}/deltas`: parse the body as an edge batch, apply it
/// copy-on-write, and re-register the compacted graph under the same id.
/// Structural deltas evict the id's cached artifacts; no-op batches change
/// nothing (and evict nothing — the cached bytes are still exact).
fn post_delta(state: &AppState, req: &Request, id: &str) -> Result<Response, ApiError> {
    let entry = lookup(state, id)?;
    if req.body.is_empty() {
        return Err(ApiError::new(400, "empty_body", "a delta batch requires a non-empty body"));
    }
    let op = match req.query_param("op") {
        Some(name) => DeltaOp::from_name(name).ok_or_else(|| {
            ApiError::invalid_parameter(
                "op",
                format!("unknown delta op {name:?}; expected insert, delete or reweight"),
            )
        })?,
        None => DeltaOp::Insert,
    };
    let parsed = GraphSource::reader(std::io::Cursor::new(req.body.clone()))
        .with_format(graph_format_param(req)?)
        .load()
        .map_err(|e| ApiError::new(400, "invalid_delta", e.to_string()))?;
    let delta = GraphDelta::from_graph(op, &parsed.graph);

    let mut graph = entry.graph.clone();
    let old_vertices = graph.storage().vertex_count();
    let stats = graph.apply_delta(&delta);
    let structural =
        stats.structural_changes() > 0 || graph.storage().vertex_count() != old_vertices;
    if !structural {
        return Ok(Response::json(200, delta_json(&entry, &stats, false, 0)));
    }
    let entry = state.replace_graph(id, graph).ok_or_else(|| {
        // The graph vanished between lookup and replace (a concurrent
        // DELETE won the race); the mutation has nowhere to land.
        ApiError::not_found(format!("graph {id:?} was deleted while the delta was applied"))
    })?;
    let evicted = state.cache.lock().expect("cache lock").evict_prefix(&format!("{id}|"));
    Ok(Response::json(200, delta_json(&entry, &stats, true, evicted)))
}

/// The delta response: the apply statistics, the resulting graph facts, and
/// the per-measure recompute cost table (what a client should expect a
/// re-render after this delta to pay).
fn delta_json(
    entry: &GraphEntry,
    stats: &DeltaApplyStats,
    structural: bool,
    evicted: usize,
) -> String {
    let costs: Vec<String> = MEASURES
        .iter()
        .map(|m| format!("{}:{}", json_string(m.name), json_string(m.delta_cost.name())))
        .collect();
    format!(
        concat!(
            "{{\"graph\":{},\"structural\":{structural},\"evicted_artifacts\":{evicted},",
            "\"inserted\":{},\"deleted\":{},\"reinserted\":{},\"redundant_inserts\":{},",
            "\"absent_deletes\":{},\"reweights\":{},\"dropped_self_loops\":{},",
            "\"superseded\":{},\"measure_costs\":{{{costs}}}}}"
        ),
        graph_json(entry),
        stats.inserted,
        stats.deleted,
        stats.reinserted,
        stats.redundant_inserts,
        stats.absent_deletes,
        stats.reweights,
        stats.dropped_self_loops,
        stats.superseded,
        structural = structural,
        evicted = evicted,
        costs = costs.join(","),
    )
}

/// `DELETE /graphs/{id}`: unregister the graph and evict its cached
/// artifacts. 404 when the id is unknown.
fn delete_graph(state: &AppState, id: &str) -> Result<Response, ApiError> {
    let entry = state
        .remove_graph(id)
        .ok_or_else(|| ApiError::not_found(format!("no graph with id {id:?}")))?;
    let evicted = state.cache.lock().expect("cache lock").evict_prefix(&format!("{id}|"));
    Ok(Response::json(
        200,
        format!("{{\"deleted\":{},\"evicted_artifacts\":{evicted}}}", json_string(&entry.id)),
    ))
}

fn list_graphs(state: &AppState) -> Response {
    let entries: Vec<String> = state.graphs().iter().map(|e| graph_json(e)).collect();
    Response::json(200, format!("{{\"graphs\":[{}]}}", entries.join(",")))
}

fn graph_info(state: &AppState, id: &str) -> Result<Response, ApiError> {
    let entry = lookup(state, id)?;
    Ok(Response::json(200, graph_json(&entry)))
}

fn graph_json(entry: &GraphEntry) -> String {
    let storage = entry.graph.storage();
    format!(
        "{{\"id\":{},\"vertices\":{},\"edges\":{},\"storage\":{},\"zero_copy\":{},\"generation\":{}}}",
        json_string(&entry.id),
        storage.vertex_count(),
        storage.edge_count(),
        json_string(entry.graph.backend_name()),
        entry.graph.is_memory_mapped(),
        entry.generation,
    )
}

fn lookup(state: &AppState, id: &str) -> Result<Arc<GraphEntry>, ApiError> {
    state.graph(id).ok_or_else(|| ApiError::not_found(format!("no graph with id {id:?}")))
}

// ---------------------------------------------------------------- rendering

/// Which non-height color scheme was requested.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum ColorChoice {
    Height,
    Degree,
}

/// Parsed, validated render parameters for one terrain request.
struct RenderParams {
    measure: Measure,
    parallelism: Parallelism,
    simplification: SimplificationConfig,
    svg_size: SvgSize,
    color: ColorChoice,
    exporter: Box<dyn Exporter>,
    exporter_name: String,
}

fn parse_render_params(req: &Request) -> Result<RenderParams, ApiError> {
    let measure = parse_measure(req)?;
    let parallelism = match req.query_param("threads") {
        Some(raw) => Parallelism::parse(raw)?,
        None => Parallelism::Serial,
    };
    let simplification = SimplificationConfig {
        node_budget: match req.query_param("budget") {
            None => SimplificationConfig::default().node_budget,
            Some("none") => None,
            Some(raw) => Some(numeric_param("budget", raw)?),
        },
        levels: match req.query_param("levels") {
            None => SimplificationConfig::default().levels,
            Some(raw) => numeric_param("levels", raw)?,
        },
    };
    let svg_size = SvgSize {
        width_px: match req.query_param("width") {
            None => SvgSize::default().width_px,
            Some(raw) => numeric_param("width", raw)?,
        },
        height_px: match req.query_param("height") {
            None => SvgSize::default().height_px,
            Some(raw) => numeric_param("height", raw)?,
        },
    };
    let color = match req.query_param("color") {
        None | Some("height") => ColorChoice::Height,
        Some("degree") => ColorChoice::Degree,
        Some(other) => {
            return Err(ApiError::invalid_parameter(
                "color",
                format!("unknown color scheme {other:?}; expected `height` or `degree`"),
            ))
        }
    };
    if color == ColorChoice::Degree && measure.field_kind() != FieldKind::Vertex {
        return Err(ApiError::invalid_parameter(
            "color",
            format!("color=degree needs a vertex measure; {} is an edge measure", measure.name()),
        ));
    }
    let exporter_name = req.query_param("format").unwrap_or("svg").to_string();
    // The sized lookup, not `exporter_by_name`: the pipeline's
    // `set_svg_size` does not reach an externally constructed exporter.
    let exporter = exporter_by_name_sized(&exporter_name, svg_size.width_px, svg_size.height_px)?;
    Ok(RenderParams {
        measure,
        parallelism,
        simplification,
        svg_size,
        color,
        exporter,
        exporter_name,
    })
}

fn parse_measure(req: &Request) -> Result<Measure, ApiError> {
    let name = req.query_param("measure").unwrap_or("kcore");
    let mut measure = Measure::from_name(name).ok_or_else(|| {
        ApiError::invalid_parameter(
            "measure",
            format!(
                "unknown measure {name:?}; expected one of: {}",
                Measure::known_names().join(", ")
            ),
        )
    })?;
    if let Measure::BetweennessSampled { samples, seed } = &mut measure {
        if let Some(raw) = req.query_param("samples") {
            *samples = numeric_param("samples", raw)?;
        }
        if let Some(raw) = req.query_param("seed") {
            *seed = numeric_param("seed", raw)?;
        }
    }
    Ok(measure)
}

fn numeric_param<T: std::str::FromStr>(name: &'static str, raw: &str) -> Result<T, ApiError> {
    raw.parse().map_err(|_| {
        ApiError::invalid_parameter(name, format!("{name} value {raw:?} is not a valid number"))
    })
}

/// The canonical cache key. Everything that can change the artifact bytes
/// is in here — and nothing else. `threads` is deliberately absent
/// (determinism makes it byte-invisible); the layout and mesh configs are
/// server-fixed defaults, pinned by a literal so a future knob can't
/// silently alias old entries. The entry's delta generation is in the key
/// (and therefore in the key-derived ETag): a mutated graph must invalidate
/// conditional requests, not answer them with `304` for vanished bytes.
fn render_cache_key(entry: &GraphEntry, p: &RenderParams) -> String {
    format!(
        "{graph_id}|terrain|gen={generation}|measure={}|budget={}|levels={}|layout=default|mesh=default|color={}|svg={}x{}|exporter={}",
        measure_canonical(&p.measure),
        match p.simplification.node_budget {
            Some(n) => n.to_string(),
            None => "none".to_string(),
        },
        p.simplification.levels,
        match p.color {
            ColorChoice::Height => "height",
            ColorChoice::Degree => "degree",
        },
        p.svg_size.width_px,
        p.svg_size.height_px,
        p.exporter_name,
        graph_id = entry.id,
        generation = entry.generation,
    )
}

fn measure_canonical(measure: &Measure) -> String {
    match measure {
        Measure::BetweennessSampled { samples, seed } => {
            format!("betweenness:samples={samples}:seed={seed}")
        }
        other => other.name().to_string(),
    }
}

fn content_type_for(exporter_name: &str) -> &'static str {
    match exporter_name {
        "svg" | "treemap" | "tiled" => "image/svg+xml",
        "json" => "application/json",
        "scene" => "application/octet-stream", // binary GTSC
        _ => "text/plain",                     // obj, ply, ascii
    }
}

fn terrain(state: &AppState, req: &Request, id: &str) -> Result<Response, ApiError> {
    let entry = lookup(state, id)?;
    let params = parse_render_params(req)?;
    let key = render_cache_key(&entry, &params);
    serve_cached(state, req, &key, || {
        let mut session = TerrainPipeline::from_shared(entry.graph.clone(), params.measure);
        session.set_parallelism(params.parallelism);
        session.set_simplification(params.simplification);
        session.set_svg_size(params.svg_size);
        if params.color == ColorChoice::Degree {
            let degrees: Vec<f64> =
                measures::degrees(entry.graph.storage()).into_iter().map(|d| d as f64).collect();
            session.set_color(ColorScheme::BySecondaryScalar(degrees));
        }
        let mut bytes = Vec::new();
        // The timing-free render: cached artifacts must depend on nothing
        // but the key. Wall-clock timings still land in `/stats`.
        session.render_deterministic_to(params.exporter.as_ref(), &mut bytes)?;
        state.stage_totals.lock().expect("stage totals lock").absorb(&session.timings());
        Ok((bytes, content_type_for(&params.exporter_name)))
    })
}

fn peaks(state: &AppState, req: &Request, id: &str) -> Result<Response, ApiError> {
    let entry = lookup(state, id)?;
    let measure = parse_measure(req)?;
    let parallelism = match req.query_param("threads") {
        Some(raw) => Parallelism::parse(raw)?,
        None => Parallelism::Serial,
    };
    let alpha: Option<f64> = match req.query_param("alpha") {
        Some(raw) => Some(numeric_param("alpha", raw)?),
        None => None,
    };
    let count: usize = match req.query_param("count") {
        Some(raw) => numeric_param("count", raw)?,
        None => 5,
    };
    let measure_name = measure_canonical(&measure);
    let key = format!(
        "{id}|peaks|gen={}|measure={measure_name}|{}",
        entry.generation,
        match alpha {
            Some(a) => format!("alpha={a}"),
            None => format!("count={count}"),
        }
    );
    serve_cached(state, req, &key, || {
        let mut session = TerrainPipeline::from_shared(entry.graph.clone(), measure);
        session.set_parallelism(parallelism);
        let stages = session.stages()?;
        let peaks = match alpha {
            Some(a) => peaks_at_alpha(stages.render_tree, stages.layout, a),
            None => highest_peaks(stages.render_tree, stages.layout, count),
        };
        let body = peaks_json(id, &measure_name, alpha, &peaks);
        state.stage_totals.lock().expect("stage totals lock").absorb(&session.timings());
        Ok((body.into_bytes(), "application/json"))
    })
}

// ------------------------------------------------------------------- tiles

/// The `threads` query parameter (shared by every render route).
fn parse_parallelism(req: &Request) -> Result<Parallelism, ApiError> {
    match req.query_param("threads") {
        Some(raw) => Ok(Parallelism::parse(raw)?),
        None => Ok(Parallelism::Serial),
    }
}

/// `GET /graphs/{id}/tiles/{zoom}/{tx}/{ty}`: one pan/zoom tile over the
/// server-fixed default layout and LOD configurations. `format=svg`
/// (default) renders a `size`-pixel square SVG; `format=scene` streams the
/// tile's items as a binary `GTSC` document. Out-of-grid keys are 404s —
/// decided from the fixed configuration, before any render.
fn tile(
    state: &AppState,
    req: &Request,
    id: &str,
    zoom: &str,
    tx: &str,
    ty: &str,
) -> Result<Response, ApiError> {
    let entry = lookup(state, id)?;
    let key = TileKey {
        zoom: numeric_param("zoom", zoom)?,
        tx: numeric_param("tx", tx)?,
        ty: numeric_param("ty", ty)?,
    };
    let max_zoom = LodConfig::default().max_lod;
    if !key.in_range(max_zoom) {
        return Err(ApiError::not_found(format!(
            "tile {key} is outside the grid: zoom must be at most {max_zoom} \
             and tx/ty below 2^zoom"
        )));
    }
    let measure = parse_measure(req)?;
    let parallelism = parse_parallelism(req)?;
    let format = req.query_param("format").unwrap_or("svg");
    let as_svg = match format {
        "svg" => true,
        "scene" => false,
        other => {
            return Err(ApiError::invalid_parameter(
                "format",
                format!("unknown tile format {other:?}; expected `svg` or `scene`"),
            ))
        }
    };
    let size: u32 = match req.query_param("size") {
        Some(raw) => numeric_param("size", raw)?,
        None => 256,
    };
    if size == 0 || size > 2048 {
        return Err(ApiError::invalid_parameter(
            "size",
            format!("tile size must lie in [1, 2048], got {size}"),
        ));
    }
    // Everything that can change the tile bytes, nothing else: generation
    // (deltas), measure, the key, the format, the pixel size. `budget`,
    // `levels` and `threads` are deliberately absent — tiles render the
    // unsimplified tree and are thread-count invariant.
    let cache_key = format!(
        "{id}|tile|gen={}|measure={}|layout=default|lod=default|zoom={}|tx={}|ty={}|exporter={format}|size={size}",
        entry.generation,
        measure_canonical(&measure),
        key.zoom,
        key.tx,
        key.ty,
    );
    let content_type = if as_svg { "image/svg+xml" } else { "application/octet-stream" };
    serve_cached(state, req, &cache_key, || {
        let mut session = TerrainPipeline::from_shared(entry.graph.clone(), measure);
        session.set_parallelism(parallelism);
        let mut bytes = Vec::new();
        {
            let scene = session.scene()?;
            if as_svg {
                scene.write_tile_svg(&key, size, &mut bytes)?;
            } else {
                scene.write_tile_gtsc(&key, &mut bytes)?;
            }
        }
        state.stage_totals.lock().expect("stage totals lock").absorb(&session.timings());
        Ok((bytes, content_type))
    })
}

/// `GET /graphs/{id}/scene`: the whole retained scene as one binary `GTSC`
/// document — every visible item with its rectangle, height, cushion
/// surface and minimum visible LOD, for client-side pan/zoom renderers
/// that then fetch (or draw) tiles locally.
fn scene_document(state: &AppState, req: &Request, id: &str) -> Result<Response, ApiError> {
    let entry = lookup(state, id)?;
    let measure = parse_measure(req)?;
    let parallelism = parse_parallelism(req)?;
    let cache_key = format!(
        "{id}|scene|gen={}|measure={}|layout=default|lod=default",
        entry.generation,
        measure_canonical(&measure),
    );
    serve_cached(state, req, &cache_key, || {
        let mut session = TerrainPipeline::from_shared(entry.graph.clone(), measure);
        session.set_parallelism(parallelism);
        let mut bytes = Vec::new();
        session.scene()?.write_scene_gtsc(&mut bytes)?;
        state.stage_totals.lock().expect("stage totals lock").absorb(&session.timings());
        Ok((bytes, "application/octet-stream"))
    })
}

fn peaks_json(graph_id: &str, measure: &str, alpha: Option<f64>, peaks: &[Peak]) -> String {
    let mut body =
        format!("{{\"graph\":{},\"measure\":{},", json_string(graph_id), json_string(measure));
    if let Some(a) = alpha {
        body.push_str(&format!("\"alpha\":{},", json_f64(a)));
    }
    body.push_str(&format!("\"count\":{},\"peaks\":[", peaks.len()));
    for (i, peak) in peaks.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let members: Vec<String> =
            peak.members.iter().take(MAX_PEAK_MEMBERS).map(|m| m.to_string()).collect();
        body.push_str(&format!(
            "{{\"root_node\":{},\"alpha\":{},\"base_height\":{},\"summit_height\":{},\"member_count\":{},\"members\":[{}],\"members_truncated\":{},\"footprint\":{{\"x0\":{},\"y0\":{},\"x1\":{},\"y1\":{}}}}}",
            peak.root_node,
            json_f64(peak.alpha),
            json_f64(peak.base_height),
            json_f64(peak.summit_height),
            peak.member_count,
            members.join(","),
            peak.members.len() > MAX_PEAK_MEMBERS,
            json_f64(peak.footprint.x0),
            json_f64(peak.footprint.y0),
            json_f64(peak.footprint.x1),
            json_f64(peak.footprint.y1),
        ));
    }
    body.push_str("]}");
    body
}

/// The shared cache protocol for deterministic artifacts:
/// 1. the ETag comes from the key hash, so `If-None-Match` answers with a
///    `304` before rendering or even locking the cache;
/// 2. a cache hit returns the stored bytes with `X-Cache: hit`;
/// 3. a miss renders *outside* the cache lock, stores, and returns
///    `X-Cache: miss` — the bytes are identical either way.
fn serve_cached(
    state: &AppState,
    req: &Request,
    key: &str,
    render: impl FnOnce() -> Result<(Vec<u8>, &'static str), ApiError>,
) -> Result<Response, ApiError> {
    let etag = etag_for_key(key);
    if let Some(candidates) = req.header("if-none-match") {
        if candidates == "*" || candidates.split(',').any(|c| c.trim() == etag) {
            state.not_modified.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Ok(Response::new(304).header("ETag", &etag));
        }
    }
    if let Some(artifact) = state.cache.lock().expect("cache lock").get(key) {
        return Ok(artifact_response(&artifact, "hit"));
    }
    let (bytes, content_type) = render()?;
    let artifact = Arc::new(CachedArtifact { bytes, etag, content_type });
    state.cache.lock().expect("cache lock").insert(key.to_string(), Arc::clone(&artifact));
    Ok(artifact_response(&artifact, "miss"))
}

fn artifact_response(artifact: &CachedArtifact, x_cache: &str) -> Response {
    Response::with_body(200, artifact.content_type, artifact.bytes.clone())
        .header("ETag", &artifact.etag)
        .header("X-Cache", x_cache)
}

// ------------------------------------------------------------------- stats

fn stats(state: &AppState) -> Response {
    let cache = state.cache.lock().expect("cache lock").stats();
    let totals = state.stage_totals.lock().expect("stage totals lock").clone();
    let load = std::sync::atomic::Ordering::Relaxed;
    let body = format!(
        concat!(
            "{{\"requests_served\":{},\"in_flight\":{},\"error_responses\":{},",
            "\"dropped_connections\":{},\"not_modified\":{},",
            "\"graphs\":{},\"workers\":{},",
            "\"cache\":{{\"hits\":{},\"misses\":{},\"hit_rate\":{},\"evictions\":{},",
            "\"insertions\":{},\"uncacheable\":{},\"entries\":{},\"bytes\":{},",
            "\"capacity\":{},\"max_bytes\":{}}},",
            "\"stage_seconds\":{{\"renders\":{},\"scalar\":{},\"tree\":{},\"super_tree\":{},",
            "\"simplify\":{},\"layout\":{},\"mesh\":{},\"svg\":{},\"scene\":{}}}}}"
        ),
        state.requests_served.load(load),
        state.in_flight.load(load),
        state.error_responses.load(load),
        state.dropped_connections.load(load),
        state.not_modified.load(load),
        state.graphs().len(),
        state.config.workers,
        cache.hits,
        cache.misses,
        json_f64(cache.hit_rate()),
        cache.evictions,
        cache.insertions,
        cache.uncacheable,
        cache.entries,
        cache.bytes,
        cache.capacity,
        cache.max_bytes,
        totals.renders,
        json_f64(totals.scalar_seconds),
        json_f64(totals.tree_seconds),
        json_f64(totals.super_tree_seconds),
        json_f64(totals.simplify_seconds),
        json_f64(totals.layout_seconds),
        json_f64(totals.mesh_seconds),
        json_f64(totals.svg_seconds),
        json_f64(totals.scene_seconds),
    );
    Response::json(200, body)
}
