//! A minimal blocking HTTP/1.1 client for the test battery, the load
//! generator, and the CI smoke binary.
//!
//! Speaks exactly the dialect the server does: one request per connection,
//! `Content-Length` framing, `Connection: close`. The response body is read
//! to the declared length when one is given, else to EOF (both are valid
//! for a close-delimited server).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;
use std::{fmt, io};

/// A parsed response.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// The status code.
    pub status: u16,
    /// Headers with ASCII-lower-cased names, in wire order.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == lower).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_utf8(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

impl fmt::Display for HttpResponse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HTTP {} ({} bytes)", self.status, self.body.len())
    }
}

/// Send one request and read the full response.
pub fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<HttpResponse> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;
    stream.set_nodelay(true)?;

    let mut writer = io::BufWriter::new(stream.try_clone()?);
    write!(writer, "{method} {target} HTTP/1.1\r\nHost: {addr}\r\n")?;
    for (name, value) in headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    if !body.is_empty() || method == "POST" {
        write!(writer, "Content-Length: {}\r\n", body.len())?;
    }
    write!(writer, "Connection: close\r\n\r\n")?;
    writer.write_all(body)?;
    writer.flush()?;

    read_response(&mut BufReader::new(stream))
}

/// `GET target`.
pub fn get(addr: SocketAddr, target: &str) -> io::Result<HttpResponse> {
    request(addr, "GET", target, &[], &[])
}

/// `GET target` with extra headers (e.g. `If-None-Match`).
pub fn get_with_headers(
    addr: SocketAddr,
    target: &str,
    headers: &[(&str, &str)],
) -> io::Result<HttpResponse> {
    request(addr, "GET", target, headers, &[])
}

/// `POST target` with a body.
pub fn post(addr: SocketAddr, target: &str, body: &[u8]) -> io::Result<HttpResponse> {
    request(addr, "POST", target, &[], body)
}

/// `DELETE target` (no body, no `Content-Length` — the server accepts
/// bodyless non-POST requests).
pub fn delete(addr: SocketAddr, target: &str) -> io::Result<HttpResponse> {
    request(addr, "DELETE", target, &[], &[])
}

fn bad_response(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

fn read_response(reader: &mut impl BufRead) -> io::Result<HttpResponse> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status_line = status_line.trim_end();
    let mut parts = status_line.splitn(3, ' ');
    let (proto, status) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if !proto.starts_with("HTTP/") {
        return Err(bad_response(format!("not an HTTP status line: {status_line:?}")));
    }
    let status: u16 =
        status.parse().map_err(|_| bad_response(format!("bad status in {status_line:?}")))?;

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad_response("EOF inside response headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            reader.read_exact(&mut body)?;
        }
        None => {
            reader.read_to_end(&mut body)?;
        }
    }
    Ok(HttpResponse { status, headers, body })
}
