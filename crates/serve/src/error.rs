//! Structured API errors: every non-2xx route outcome is an [`ApiError`]
//! that serializes to a stable JSON body
//! `{"error":{"status":N,"code":"...","message":"...","param":"..."}}`.
//!
//! The typed error values from the lower layers map straight in:
//! [`measures::ParseParallelismError`] and [`terrain::UnknownExporterError`]
//! become 400s that name the offending query parameter and echo the
//! library's own message (which lists the accepted values) — the unit tests
//! here pin that mapping so a library rewording can't silently turn a 400
//! into a 500.

use std::fmt;

use crate::http::{HttpError, Response};
use graph_terrain::TerrainError;
use measures::ParseParallelismError;
use terrain::UnknownExporterError;

/// A route failure with an HTTP status, a machine-readable code, and a
/// human-readable message. `param` names the query parameter at fault, when
/// there is one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApiError {
    /// The HTTP status to respond with.
    pub status: u16,
    /// Stable machine-readable code (`invalid_parameter`, `not_found`, ...).
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
    /// The query parameter at fault, if any.
    pub param: Option<&'static str>,
}

impl ApiError {
    /// A new error with no parameter attribution.
    pub fn new(status: u16, code: &'static str, message: impl Into<String>) -> Self {
        ApiError { status, code, message: message.into(), param: None }
    }

    /// Attribute the error to a query parameter (builder style).
    pub fn for_param(mut self, name: &'static str) -> Self {
        self.param = Some(name);
        self
    }

    /// 400 with code `invalid_parameter`.
    pub fn invalid_parameter(name: &'static str, message: impl Into<String>) -> Self {
        ApiError::new(400, "invalid_parameter", message).for_param(name)
    }

    /// 404 with code `not_found`.
    pub fn not_found(message: impl Into<String>) -> Self {
        ApiError::new(404, "not_found", message)
    }

    /// The JSON body for this error.
    pub fn to_json(&self) -> String {
        let mut body = format!(
            "{{\"error\":{{\"status\":{},\"code\":{},\"message\":{}",
            self.status,
            json_string(self.code),
            json_string(&self.message)
        );
        if let Some(param) = self.param {
            body.push_str(&format!(",\"param\":{}", json_string(param)));
        }
        body.push_str("}}");
        body
    }

    /// The full HTTP response for this error.
    pub fn into_response(self) -> Response {
        Response::json(self.status, self.to_json())
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {}", self.status, self.code, self.message)
    }
}

impl std::error::Error for ApiError {}

impl From<ParseParallelismError> for ApiError {
    fn from(e: ParseParallelismError) -> Self {
        ApiError::invalid_parameter("threads", e.to_string())
    }
}

impl From<UnknownExporterError> for ApiError {
    fn from(e: UnknownExporterError) -> Self {
        ApiError::invalid_parameter("format", e.to_string())
    }
}

impl From<TerrainError> for ApiError {
    fn from(e: TerrainError) -> Self {
        // Every TerrainError a route can hit is caused by the request (a
        // body that fails to parse as a graph, a config combination the
        // pipeline rejects) — the server's own defaults are exercised by
        // the test battery, so blame the input.
        ApiError::new(400, "invalid_input", e.to_string())
    }
}

/// The response owed for a request that failed HTTP parsing, or `None` when
/// the connection should be dropped without a reply. Reuses the [`ApiError`]
/// JSON body shape so all error responses look alike; 405s carry an `Allow`
/// header.
pub fn http_error_response(e: &HttpError) -> Option<Response> {
    let status = e.response_status()?;
    let response = ApiError::new(status, e.code(), e.to_string()).into_response();
    Some(if status == 405 { response.header("Allow", "GET, POST") } else { response })
}

/// Serialize a JSON string literal (quotes, backslashes, control bytes).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an `f64` for a JSON body (JSON has no NaN/inf; clamp to null).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use measures::Parallelism;
    use terrain::exporter_by_name;

    #[test]
    fn parallelism_parse_errors_become_400_naming_the_threads_param() {
        let err: ApiError = Parallelism::parse("8x0").unwrap_err().into();
        assert_eq!(err.status, 400);
        assert_eq!(err.code, "invalid_parameter");
        assert_eq!(err.param, Some("threads"));
        assert!(err.message.contains("8x0"), "message should echo the input: {}", err.message);
        assert!(
            err.message.contains("serial"),
            "message should list accepted forms: {}",
            err.message
        );
        let response = err.into_response();
        assert_eq!(response.status, 400);
        let body = String::from_utf8(response.body).unwrap();
        assert!(body.contains("\"param\":\"threads\""), "{body}");
        assert!(body.contains("\"code\":\"invalid_parameter\""), "{body}");
    }

    #[test]
    fn unknown_exporter_errors_become_400_naming_the_format_param() {
        let err: ApiError = match exporter_by_name("gif") {
            Err(e) => e.into(),
            Ok(_) => panic!("gif must not resolve to a backend"),
        };
        assert_eq!(err.status, 400);
        assert_eq!(err.param, Some("format"));
        for backend in ["svg", "treemap", "obj", "ply", "ascii", "json"] {
            assert!(
                err.message.contains(backend),
                "message should list {backend}: {}",
                err.message
            );
        }
    }

    #[test]
    fn error_bodies_are_valid_json_even_with_quotes_in_the_message() {
        let err = ApiError::invalid_parameter("measure", "unknown measure \"bogus\"\n");
        let value = serde_json::from_str(&err.to_json()).expect("body parses as JSON");
        let inner = value.get("error").unwrap();
        assert_eq!(inner.get("status").unwrap().as_u64(), Some(400));
        assert_eq!(inner.get("param").unwrap().as_str(), Some("measure"));
        assert_eq!(inner.get("message").unwrap().as_str(), Some("unknown measure \"bogus\"\n"));
    }

    #[test]
    fn http_errors_without_a_status_produce_no_response() {
        assert!(http_error_response(&HttpError::ConnectionClosed).is_none());
        let resp = http_error_response(&HttpError::UnsupportedMethod("PUT".into())).unwrap();
        assert_eq!(resp.status, 405);
        assert_eq!(resp.header_value("allow"), Some("GET, POST"));
    }
}
