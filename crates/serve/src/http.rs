//! A hand-rolled HTTP/1.1 request/response layer over blocking streams.
//!
//! The server speaks the smallest useful subset of HTTP: one request per
//! connection (`Connection: close` on every response), fixed
//! `Content-Length` bodies only (no chunked encoding), `GET`, `POST` and
//! `DELETE`.
//! That subset is enough for every client we care about (`curl`, the
//! [`crate::client`] module, browsers) and keeps the parser small enough to
//! test exhaustively — the corrupt-request suite feeds every truncation
//! prefix of a valid request through [`read_request`] and asserts the
//! connection either gets a 4xx or drops cleanly, never a panic.
//!
//! Every parse failure is a typed [`HttpError`]. The variant decides the
//! wire behaviour via [`HttpError::response_status`]: `Some(status)` means
//! the server still owes the peer a status line (malformed syntax, limits
//! exceeded), `None` means the peer is gone or never spoke and the
//! connection is dropped without a response.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, BufRead};

/// Longest accepted request line (method + target + version), in bytes.
pub const MAX_REQUEST_LINE_BYTES: usize = 8 * 1024;
/// Longest accepted single header line, in bytes.
pub const MAX_HEADER_LINE_BYTES: usize = 8 * 1024;
/// Most headers accepted on one request.
pub const MAX_HEADER_COUNT: usize = 64;

/// The request methods the server implements.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Method {
    /// `GET`.
    Get,
    /// `POST`.
    Post,
    /// `DELETE`.
    Delete,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Delete => "DELETE",
        })
    }
}

/// One parsed request: line, lower-cased headers, and the full body.
#[derive(Clone, Debug)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// The path component of the target, percent-decoded (`/graphs/g1`).
    pub path: String,
    /// Query parameters in order of appearance, percent-decoded.
    pub query: Vec<(String, String)>,
    /// Headers with ASCII-lower-cased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == lower).map(|(_, v)| v.as_str())
    }

    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. [`response_status`](Self::response_status)
/// maps each variant onto the wire behaviour.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before sending any byte.
    ConnectionClosed,
    /// The peer closed (or timed out) mid-request: inside a line, between
    /// headers, or before the declared body arrived.
    Truncated {
        /// What the parser was in the middle of reading.
        while_reading: &'static str,
    },
    /// The socket failed underneath the parser (includes read timeouts).
    Io(io::Error),
    /// The request line exceeded [`MAX_REQUEST_LINE_BYTES`].
    RequestLineTooLong,
    /// The request line was not `<method> <target> HTTP/1.x`.
    MalformedRequestLine(String),
    /// A method other than `GET`/`POST`/`DELETE`.
    UnsupportedMethod(String),
    /// An `HTTP/<major>.<minor>` version other than 1.0/1.1.
    UnsupportedVersion(String),
    /// A header line exceeded [`MAX_HEADER_LINE_BYTES`].
    HeaderTooLarge,
    /// More than [`MAX_HEADER_COUNT`] headers.
    TooManyHeaders,
    /// A header line without a `:` separator, or a non-UTF-8 line.
    MalformedHeader(String),
    /// `Content-Length` present but not a base-10 integer.
    BadContentLength(String),
    /// A `POST` without a `Content-Length` header.
    MissingContentLength,
    /// The declared body exceeds the configured limit.
    BodyTooLarge {
        /// The declared `Content-Length`.
        declared: usize,
        /// The server's limit.
        limit: usize,
    },
}

impl HttpError {
    /// The status line still owed to the peer, or `None` when the
    /// connection should be dropped without a response (the peer is gone or
    /// never spoke).
    pub fn response_status(&self) -> Option<u16> {
        match self {
            HttpError::ConnectionClosed | HttpError::Io(_) => None,
            // The peer half-closed mid-request: it may still be reading, so
            // tell it what went wrong before closing our side too.
            HttpError::Truncated { .. } => Some(400),
            HttpError::RequestLineTooLong => Some(414),
            HttpError::MalformedRequestLine(_)
            | HttpError::MalformedHeader(_)
            | HttpError::BadContentLength(_) => Some(400),
            HttpError::UnsupportedMethod(_) => Some(405),
            HttpError::UnsupportedVersion(_) => Some(505),
            HttpError::HeaderTooLarge | HttpError::TooManyHeaders => Some(431),
            HttpError::MissingContentLength => Some(411),
            HttpError::BodyTooLarge { .. } => Some(413),
        }
    }

    /// A short machine-readable code for the JSON error body.
    pub fn code(&self) -> &'static str {
        match self {
            HttpError::ConnectionClosed => "connection_closed",
            HttpError::Truncated { .. } => "truncated_request",
            HttpError::Io(_) => "io",
            HttpError::RequestLineTooLong => "request_line_too_long",
            HttpError::MalformedRequestLine(_) => "malformed_request_line",
            HttpError::UnsupportedMethod(_) => "method_not_allowed",
            HttpError::UnsupportedVersion(_) => "http_version_not_supported",
            HttpError::HeaderTooLarge => "header_too_large",
            HttpError::TooManyHeaders => "too_many_headers",
            HttpError::MalformedHeader(_) => "malformed_header",
            HttpError::BadContentLength(_) => "bad_content_length",
            HttpError::MissingContentLength => "length_required",
            HttpError::BodyTooLarge { .. } => "body_too_large",
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::ConnectionClosed => write!(f, "connection closed before any request"),
            HttpError::Truncated { while_reading } => {
                write!(f, "connection closed while reading {while_reading}")
            }
            HttpError::Io(e) => write!(f, "socket error: {e}"),
            HttpError::RequestLineTooLong => {
                write!(f, "request line exceeds {MAX_REQUEST_LINE_BYTES} bytes")
            }
            HttpError::MalformedRequestLine(line) => {
                write!(f, "malformed request line {line:?}; expected `<method> <target> HTTP/1.1`")
            }
            HttpError::UnsupportedMethod(m) => {
                write!(f, "method {m:?} not allowed; expected GET, POST or DELETE")
            }
            HttpError::UnsupportedVersion(v) => {
                write!(f, "unsupported protocol version {v:?}; expected HTTP/1.0 or HTTP/1.1")
            }
            HttpError::HeaderTooLarge => {
                write!(f, "a header line exceeds {MAX_HEADER_LINE_BYTES} bytes")
            }
            HttpError::TooManyHeaders => write!(f, "more than {MAX_HEADER_COUNT} headers"),
            HttpError::MalformedHeader(line) => {
                write!(f, "malformed header line {line:?}; expected `Name: value`")
            }
            HttpError::BadContentLength(v) => {
                write!(f, "Content-Length {v:?} is not a base-10 integer")
            }
            HttpError::MissingContentLength => {
                write!(f, "POST requires a Content-Length header")
            }
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "declared body of {declared} bytes exceeds the {limit}-byte limit")
            }
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Read one line (terminated by `\n`, optional `\r` stripped) without ever
/// buffering more than `limit` bytes. `Ok(None)` is clean EOF before any
/// byte of this line.
fn read_line_limited(
    reader: &mut impl BufRead,
    limit: usize,
    over_limit: fn() -> HttpError,
    while_reading: &'static str,
) -> Result<Option<Vec<u8>>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(HttpError::Truncated { while_reading });
        }
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            if line.len() + pos > limit {
                return Err(over_limit());
            }
            line.extend_from_slice(&buf[..pos]);
            reader.consume(pos + 1);
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(Some(line));
        }
        if line.len() + buf.len() > limit {
            return Err(over_limit());
        }
        line.extend_from_slice(buf);
        let n = buf.len();
        reader.consume(n);
    }
}

/// Parse one request off the stream. `max_body_bytes` bounds what a
/// `Content-Length` may declare; everything else is bounded by the module
/// constants. Never reads past the declared body.
pub fn read_request(
    reader: &mut impl BufRead,
    max_body_bytes: usize,
) -> Result<Request, HttpError> {
    let line = read_line_limited(
        reader,
        MAX_REQUEST_LINE_BYTES,
        || HttpError::RequestLineTooLong,
        "the request line",
    )?
    .ok_or(HttpError::ConnectionClosed)?;
    let line = String::from_utf8(line).map_err(|e| {
        HttpError::MalformedRequestLine(String::from_utf8_lossy(e.as_bytes()).into_owned())
    })?;

    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(HttpError::MalformedRequestLine(line.clone())),
    };
    if !version.starts_with("HTTP/") {
        return Err(HttpError::MalformedRequestLine(line.clone()));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::UnsupportedVersion(version.to_string()));
    }
    let method = match method {
        "GET" => Method::Get,
        "POST" => Method::Post,
        "DELETE" => Method::Delete,
        other => return Err(HttpError::UnsupportedMethod(other.to_string())),
    };
    if !target.starts_with('/') {
        return Err(HttpError::MalformedRequestLine(line.clone()));
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path, false);
    let query = raw_query.map(parse_query).unwrap_or_default();

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = read_line_limited(
            reader,
            MAX_HEADER_LINE_BYTES,
            || HttpError::HeaderTooLarge,
            "a header line",
        )?
        .ok_or(HttpError::Truncated { while_reading: "the header block" })?;
        if line.is_empty() {
            break; // end of headers
        }
        if headers.len() == MAX_HEADER_COUNT {
            return Err(HttpError::TooManyHeaders);
        }
        let line = String::from_utf8(line).map_err(|e| {
            HttpError::MalformedHeader(String::from_utf8_lossy(e.as_bytes()).into_owned())
        })?;
        let (name, value) =
            line.split_once(':').ok_or_else(|| HttpError::MalformedHeader(line.clone()))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::MalformedHeader(line.clone()));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => {
            Some(v.parse::<usize>().map_err(|_| HttpError::BadContentLength(v.clone()))?)
        }
        None => None,
    };
    let body = match (method, content_length) {
        (Method::Post, None) => return Err(HttpError::MissingContentLength),
        (_, None) | (_, Some(0)) => Vec::new(),
        (_, Some(declared)) => {
            if declared > max_body_bytes {
                return Err(HttpError::BodyTooLarge { declared, limit: max_body_bytes });
            }
            let mut body = vec![0u8; declared];
            read_exact_or_truncated(reader, &mut body)?;
            body
        }
    };

    Ok(Request { method, path, query, headers, body })
}

/// `read_exact` that reports EOF as a truncated request, not a bare io error.
fn read_exact_or_truncated(reader: &mut impl BufRead, buf: &mut [u8]) -> Result<(), HttpError> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = reader.read(&mut buf[filled..])?;
        if n == 0 {
            return Err(HttpError::Truncated { while_reading: "the request body" });
        }
        filled += n;
    }
    Ok(())
}

/// Split `a=1&b=two` into decoded pairs; a key without `=` gets an empty
/// value.
pub fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k, true), percent_decode(v, true)),
            None => (percent_decode(pair, true), String::new()),
        })
        .collect()
}

/// Decode `%xx` escapes (and `+` as space inside query strings). Invalid
/// escapes pass through verbatim — a lenient decoder cannot be used to smuggle
/// anything here because paths are re-matched against a fixed route table.
pub fn percent_decode(s: &str, plus_as_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                match (hex_digit(bytes[i + 1]), hex_digit(bytes[i + 2])) {
                    (Some(hi), Some(lo)) => {
                        out.push(hi * 16 + lo);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_digit(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// The canonical reason phrase for every status the server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// An outgoing response; serialized by [`write_to`](Self::write_to) with a
/// `Content-Length` and `Connection: close` on every reply.
#[derive(Clone, Debug)]
pub struct Response {
    /// The status code.
    pub status: u16,
    headers: Vec<(String, String)>,
    /// The body bytes (empty for 304).
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with the given status.
    pub fn new(status: u16) -> Self {
        Response { status, headers: Vec::new(), body: Vec::new() }
    }

    /// A response with a body and explicit content type.
    pub fn with_body(status: u16, content_type: &str, body: Vec<u8>) -> Self {
        Response::new(status).header("Content-Type", content_type).body(body)
    }

    /// A `application/json` response.
    pub fn json(status: u16, body: String) -> Self {
        Response::with_body(status, "application/json", body.into_bytes())
    }

    /// Add a header (builder style).
    pub fn header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Replace the body (builder style).
    pub fn body(mut self, body: Vec<u8>) -> Self {
        self.body = body;
        self
    }

    /// First header value with the given (case-insensitive) name.
    pub fn header_value(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// Serialize onto the wire. 304 responses carry headers but no body
    /// bytes and no Content-Length (per RFC 9110 the validator headers
    /// describe the representation that was *not* sent).
    pub fn write_to(&self, writer: &mut dyn io::Write) -> io::Result<()> {
        write!(writer, "HTTP/1.1 {} {}\r\n", self.status, reason_phrase(self.status))?;
        for (name, value) in &self.headers {
            write!(writer, "{name}: {value}\r\n")?;
        }
        if self.status != 304 {
            write!(writer, "Content-Length: {}\r\n", self.body.len())?;
        }
        write!(writer, "Connection: close\r\n\r\n")?;
        if self.status != 304 {
            writer.write_all(&self.body)?;
        }
        Ok(())
    }
}

/// Parsed headers as a lookup map (used by tests and the client).
pub fn header_map(headers: &[(String, String)]) -> BTreeMap<String, String> {
    headers.iter().cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(raw.to_vec()), 1024 * 1024)
    }

    #[test]
    fn parses_a_get_with_query_and_headers() {
        let req = parse(
            b"GET /graphs/g1/terrain?measure=kcore&width=640 HTTP/1.1\r\nHost: x\r\nIf-None-Match: \"abc\"\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/graphs/g1/terrain");
        assert_eq!(req.query_param("measure"), Some("kcore"));
        assert_eq!(req.query_param("width"), Some("640"));
        assert_eq!(req.header("if-none-match"), Some("\"abc\""));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_body_exactly_to_content_length() {
        let req = parse(b"POST /graphs HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello extra").unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_a_bodyless_delete() {
        let req = parse(b"DELETE /graphs/g1 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, Method::Delete);
        assert_eq!(req.path, "/graphs/g1");
        assert!(req.body.is_empty(), "DELETE needs no Content-Length");
    }

    #[test]
    fn bare_lf_line_endings_are_accepted() {
        let req = parse(b"GET /stats HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.path, "/stats");
    }

    #[test]
    fn percent_decoding_applies_to_path_and_query() {
        let req = parse(b"GET /graphs/my%20graph?q=a+b%21 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/graphs/my graph");
        assert_eq!(req.query_param("q"), Some("a b!"));
    }

    #[test]
    fn typed_errors_map_to_the_right_status() {
        let cases: Vec<(&[u8], u16)> = vec![
            (b"FLY /x HTTP/1.1\r\n\r\n" as &[u8], 405),
            (b"GET /x HTTP/2.0\r\n\r\n", 505),
            (b"GET\r\n\r\n", 400),
            (b"GET /x\r\n\r\n", 400),
            (b"GET x HTTP/1.1\r\n\r\n", 400),
            (b"POST /graphs HTTP/1.1\r\n\r\n", 411),
            (b"POST /graphs HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
            (b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n", 400),
        ];
        for (raw, status) in cases {
            let err = parse(raw).unwrap_err();
            assert_eq!(
                err.response_status(),
                Some(status),
                "{:?} should map to {status}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn eof_before_any_byte_is_a_silent_close() {
        let err = parse(b"").unwrap_err();
        assert!(matches!(err, HttpError::ConnectionClosed));
        assert_eq!(err.response_status(), None);
    }

    #[test]
    fn truncation_mid_request_is_a_400() {
        for raw in [
            b"GET /stats HT".as_slice(),
            b"GET /stats HTTP/1.1\r\nHost: x".as_slice(),
            b"POST /graphs HTTP/1.1\r\nContent-Length: 10\r\n\r\nhalf".as_slice(),
        ] {
            let err = parse(raw).unwrap_err();
            assert_eq!(err.response_status(), Some(400), "{:?}", String::from_utf8_lossy(raw));
        }
    }

    #[test]
    fn limits_are_enforced() {
        let mut long_line = b"GET /".to_vec();
        long_line.extend(std::iter::repeat(b'a').take(MAX_REQUEST_LINE_BYTES + 10));
        long_line.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        assert_eq!(parse(&long_line).unwrap_err().response_status(), Some(414));

        let mut big_header = b"GET /x HTTP/1.1\r\nX-Big: ".to_vec();
        big_header.extend(std::iter::repeat(b'b').take(MAX_HEADER_LINE_BYTES + 10));
        big_header.extend_from_slice(b"\r\n\r\n");
        assert_eq!(parse(&big_header).unwrap_err().response_status(), Some(431));

        let mut many = b"GET /x HTTP/1.1\r\n".to_vec();
        for i in 0..=MAX_HEADER_COUNT {
            many.extend_from_slice(format!("X-{i}: v\r\n").as_bytes());
        }
        many.extend_from_slice(b"\r\n");
        assert_eq!(parse(&many).unwrap_err().response_status(), Some(431));

        let err = read_request(
            &mut Cursor::new(b"POST /graphs HTTP/1.1\r\nContent-Length: 100\r\n\r\n".to_vec()),
            10,
        )
        .unwrap_err();
        assert_eq!(err.response_status(), Some(413));
    }

    #[test]
    fn responses_serialize_with_content_length_and_close() {
        let mut wire = Vec::new();
        Response::json(200, "{}".into())
            .header("ETag", "\"deadbeef\"")
            .write_to(&mut wire)
            .unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("ETag: \"deadbeef\"\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn not_modified_sends_no_body_or_content_length() {
        let mut wire = Vec::new();
        Response::new(304)
            .header("ETag", "\"x\"")
            .body(b"should not appear".to_vec())
            .write_to(&mut wire)
            .unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 304 Not Modified\r\n"));
        assert!(!text.contains("Content-Length"));
        assert!(!text.contains("should not appear"));
    }
}
