//! A bounded LRU cache for rendered artifacts, keyed by the canonical
//! render-parameter string.
//!
//! Because the pipeline is deterministic — the same graph and settings
//! produce bit-identical artifacts at every thread count — a cache hit is
//! byte-exact, and the entry's ETag can be derived from the *key* alone
//! ([`etag_for_key`]): two renders with the same key would have the same
//! bytes anyway, so the key hash is as strong a validator as a content
//! hash, available before the render runs (which is what lets the server
//! answer `If-None-Match` with `304 Not Modified` without rendering or even
//! consulting the cache).
//!
//! The implementation is an intrusive doubly-linked list threaded through a
//! slab, with a `HashMap` from key to slot — `get`/`insert` are O(1) and
//! the recency order is explicit enough to check against a model oracle in
//! the property test. Capacity is bounded twice: by entry count and by
//! total body bytes; eviction pops the least-recently-used tail until both
//! bounds hold.

use std::collections::HashMap;
use std::sync::Arc;

/// One cached artifact: the exact response body plus its validators.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedArtifact {
    /// The response body, byte-exact across hits.
    pub bytes: Vec<u8>,
    /// The strong ETag served with this artifact (quoted, per RFC 9110).
    pub etag: String,
    /// The `Content-Type` served with this artifact.
    pub content_type: &'static str,
}

/// The strong ETag for a canonical cache key: a quoted FNV-1a/64 hex digest.
pub fn etag_for_key(key: &str) -> String {
    format!("\"{:016x}\"", fnv1a64(key.as_bytes()))
}

/// FNV-1a 64-bit over a byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A point-in-time snapshot of the cache counters, served by `/stats`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `get` calls that found their key.
    pub hits: u64,
    /// `get` calls that missed.
    pub misses: u64,
    /// Entries evicted to restore the bounds.
    pub evictions: u64,
    /// Successful `insert` calls (including replacements).
    pub insertions: u64,
    /// Inserts refused because one artifact alone exceeds the byte bound.
    pub uncacheable: u64,
    /// Entries resident right now.
    pub entries: usize,
    /// Body bytes resident right now.
    pub bytes: usize,
    /// The entry-count bound.
    pub capacity: usize,
    /// The byte bound.
    pub max_bytes: usize,
}

impl CacheStats {
    /// Hits over lookups, or 0.0 before the first lookup.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

const NIL: usize = usize::MAX;

struct Slot {
    key: String,
    value: Arc<CachedArtifact>,
    prev: usize,
    next: usize,
}

/// The cache proper. Not internally synchronized — the server wraps it in a
/// `Mutex` and keeps renders outside the critical section.
pub struct LruCache {
    capacity: usize,
    max_bytes: usize,
    map: HashMap<String, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    insertions: u64,
    uncacheable: u64,
}

impl LruCache {
    /// A cache bounded to `capacity` entries and `max_bytes` total body
    /// bytes. A zero `capacity` is raised to 1 (a cache that can hold
    /// nothing would make every `insert` an immediate eviction of itself).
    pub fn new(capacity: usize, max_bytes: usize) -> Self {
        LruCache {
            capacity: capacity.max(1),
            max_bytes,
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            insertions: 0,
            uncacheable: 0,
        }
    }

    /// Entries resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Body bytes resident.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Look up a key, promoting it to most-recently-used on a hit. Counts a
    /// hit or a miss.
    pub fn get(&mut self, key: &str) -> Option<Arc<CachedArtifact>> {
        match self.map.get(key).copied() {
            Some(slot) => {
                self.hits += 1;
                self.unlink(slot);
                self.link_front(slot);
                Some(Arc::clone(&self.slots[slot].value))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Look up a key without touching recency or the counters (tests).
    pub fn peek(&self, key: &str) -> Option<&Arc<CachedArtifact>> {
        self.map.get(key).map(|&slot| &self.slots[slot].value)
    }

    /// Insert (or replace) an artifact at most-recently-used, then evict
    /// from the least-recently-used end until both bounds hold again. An
    /// artifact that alone exceeds the byte bound is not cached at all.
    pub fn insert(&mut self, key: String, value: Arc<CachedArtifact>) {
        if value.bytes.len() > self.max_bytes {
            self.uncacheable += 1;
            return;
        }
        self.insertions += 1;
        if let Some(&slot) = self.map.get(&key) {
            self.bytes = self.bytes - self.slots[slot].value.bytes.len() + value.bytes.len();
            self.slots[slot].value = value;
            self.unlink(slot);
            self.link_front(slot);
        } else {
            self.bytes += value.bytes.len();
            let slot = match self.free.pop() {
                Some(slot) => {
                    self.slots[slot] = Slot { key: key.clone(), value, prev: NIL, next: NIL };
                    slot
                }
                None => {
                    self.slots.push(Slot { key: key.clone(), value, prev: NIL, next: NIL });
                    self.slots.len() - 1
                }
            };
            self.map.insert(key, slot);
            self.link_front(slot);
        }
        while self.map.len() > self.capacity || self.bytes > self.max_bytes {
            if self.map.len() == 1 {
                break; // the sole (just-inserted) entry fits by the guard above
            }
            self.evict_tail();
        }
    }

    /// Keys from most- to least-recently-used (the oracle order in the
    /// property test).
    pub fn keys_most_recent_first(&self) -> Vec<String> {
        let mut keys = Vec::with_capacity(self.map.len());
        let mut cursor = self.head;
        while cursor != NIL {
            keys.push(self.slots[cursor].key.clone());
            cursor = self.slots[cursor].next;
        }
        keys
    }

    /// Drop every entry whose key starts with `prefix`, returning how many
    /// were removed. Used when a graph is deleted or mutated: its cache keys
    /// all begin `{graph_id}|`, so one prefix sweep evicts exactly that
    /// graph's artifacts and nothing else. Counted as evictions.
    pub fn evict_prefix(&mut self, prefix: &str) -> usize {
        let doomed: Vec<usize> =
            self.map.iter().filter(|(k, _)| k.starts_with(prefix)).map(|(_, &s)| s).collect();
        for slot in &doomed {
            let slot = *slot;
            self.unlink(slot);
            let key = std::mem::take(&mut self.slots[slot].key);
            self.bytes -= self.slots[slot].value.bytes.len();
            self.slots[slot].value = Arc::new(CachedArtifact {
                bytes: Vec::new(),
                etag: String::new(),
                content_type: "",
            });
            self.map.remove(&key);
            self.free.push(slot);
            self.evictions += 1;
        }
        doomed.len()
    }

    /// The current counter values.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            insertions: self.insertions,
            uncacheable: self.uncacheable,
            entries: self.map.len(),
            bytes: self.bytes,
            capacity: self.capacity,
            max_bytes: self.max_bytes,
        }
    }

    fn evict_tail(&mut self) {
        let slot = self.tail;
        debug_assert_ne!(slot, NIL, "evict_tail on an empty cache");
        self.unlink(slot);
        let key = std::mem::take(&mut self.slots[slot].key);
        self.bytes -= self.slots[slot].value.bytes.len();
        self.slots[slot].value =
            Arc::new(CachedArtifact { bytes: Vec::new(), etag: String::new(), content_type: "" });
        self.map.remove(&key);
        self.free.push(slot);
        self.evictions += 1;
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    fn link_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

impl std::fmt::Debug for LruCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LruCache")
            .field("entries", &self.map.len())
            .field("bytes", &self.bytes)
            .field("capacity", &self.capacity)
            .field("max_bytes", &self.max_bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(n: usize) -> Arc<CachedArtifact> {
        Arc::new(CachedArtifact {
            bytes: vec![0xAB; n],
            etag: etag_for_key(&format!("k{n}")),
            content_type: "image/svg+xml",
        })
    }

    #[test]
    fn lru_evicts_in_recency_order() {
        let mut cache = LruCache::new(2, 1 << 20);
        cache.insert("a".into(), artifact(1));
        cache.insert("b".into(), artifact(1));
        assert!(cache.get("a").is_some()); // promote a over b
        cache.insert("c".into(), artifact(1)); // evicts b
        assert_eq!(cache.keys_most_recent_first(), vec!["c", "a"]);
        assert!(cache.get("b").is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 1));
    }

    #[test]
    fn byte_bound_evicts_and_oversized_entries_are_refused() {
        let mut cache = LruCache::new(100, 10);
        cache.insert("a".into(), artifact(6));
        cache.insert("b".into(), artifact(6)); // 12 bytes > 10: evicts a
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes(), 6);
        cache.insert("huge".into(), artifact(11)); // alone over the bound
        assert!(cache.peek("huge").is_none());
        assert_eq!(cache.stats().uncacheable, 1);
        assert_eq!(cache.len(), 1, "refused insert must not evict residents");
    }

    #[test]
    fn replacement_updates_bytes_without_growing_entries() {
        let mut cache = LruCache::new(4, 100);
        cache.insert("a".into(), artifact(10));
        cache.insert("a".into(), artifact(20));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes(), 20);
        assert_eq!(cache.stats().insertions, 2);
    }

    #[test]
    fn prefix_eviction_removes_exactly_the_matching_keys() {
        let mut cache = LruCache::new(8, 1 << 20);
        cache.insert("g1|terrain|kcore".into(), artifact(3));
        cache.insert("g1|peaks|kcore".into(), artifact(4));
        cache.insert("g2|terrain|kcore".into(), artifact(5));
        assert_eq!(cache.evict_prefix("g1|"), 2);
        assert_eq!(cache.keys_most_recent_first(), vec!["g2|terrain|kcore"]);
        assert_eq!(cache.bytes(), 5, "evicted bodies must leave the byte count");
        assert_eq!(cache.stats().evictions, 2);
        assert_eq!(cache.evict_prefix("g1|"), 0, "a second sweep finds nothing");
        // The freed slots are reusable and the list survives the surgery.
        cache.insert("g3|terrain|kcore".into(), artifact(1));
        assert!(cache.get("g2|terrain|kcore").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn etags_are_quoted_stable_and_key_sensitive() {
        let a = etag_for_key("g1|terrain|kcore");
        let b = etag_for_key("g1|terrain|degree");
        assert!(a.starts_with('"') && a.ends_with('"') && a.len() == 18);
        assert_ne!(a, b);
        assert_eq!(a, etag_for_key("g1|terrain|kcore"));
    }
}
