//! # baselines — comparison visualizations from the paper's evaluation
//!
//! The paper's experiments and user study compare the terrain visualization
//! against existing techniques:
//!
//! * the classic **Fruchterman–Reingold spring layout** \[31\]
//!   (Figures 6(a,b), the linked 2D displays, Figures 9(b), 10(b,c));
//! * **LaNet-vi** \[6\], which draws K-Cores as concentric shells
//!   (Figures 6(f), 12(b,e,h));
//! * **OpenOrd** \[26\], a multilevel force-directed layout for large graphs
//!   (Figures 12(c,f,i), 13(b));
//! * the **CSV plot** \[1\], a cohesion curve over a vertex ordering
//!   (Figure 6(g)).
//!
//! As discussed in DESIGN.md §4 these are reimplemented in simplified form:
//! what the comparisons (and the simulated user study) need is each method's
//! characteristic geometry — shells for LaNet-vi, cluster blobs for OpenOrd,
//! a 1D cohesion curve for CSV — not pixel-exact output of the original
//! binaries. Every layout is deterministic given its seed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod csv_plot;
pub mod lanet;
pub mod openord;
pub mod spring;
pub mod svg;

pub use csv_plot::{csv_plot, CsvPlot};
pub use lanet::{lanet_layout, LanetLayout};
pub use openord::{openord_layout, OpenOrdConfig};
pub use spring::{spring_layout, SpringConfig};
pub use svg::{layout_to_svg, Point2, PositionedGraph};
