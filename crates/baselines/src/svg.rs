//! Shared node-link rendering types and SVG export for the baseline layouts.

use std::fmt::Write as _;
use ugraph::CsrGraph;

/// A point in layout space.
#[derive(Copy, Clone, Debug, PartialEq, Default)]
pub struct Point2 {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Point2 {
    /// Construct a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point2) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// A graph together with a 2D position per vertex (the output of every
/// baseline layout).
#[derive(Clone, Debug)]
pub struct PositionedGraph {
    /// Vertex positions, indexed by vertex id.
    pub positions: Vec<Point2>,
    /// Optional per-vertex value used for coloring (e.g. core number).
    pub color_value: Option<Vec<f64>>,
}

impl PositionedGraph {
    /// Bounding box of the positions as `(min, max)`.
    pub fn bounds(&self) -> Option<(Point2, Point2)> {
        if self.positions.is_empty() {
            return None;
        }
        let mut min = Point2::new(f64::INFINITY, f64::INFINITY);
        let mut max = Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in &self.positions {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        Some((min, max))
    }

    /// Fraction of vertex pairs closer than `radius` — a crude measure of
    /// node occlusion used by the simulated user study (sampled for large
    /// graphs, exact for small ones).
    pub fn occlusion_fraction(&self, radius: f64) -> f64 {
        let n = self.positions.len();
        if n < 2 {
            return 0.0;
        }
        // Sampling cap keeps this O(1e6) comparisons at most.
        let stride = ((n * n) as f64 / 1_000_000.0).sqrt().ceil().max(1.0) as usize;
        let mut close = 0usize;
        let mut total = 0usize;
        let mut i = 0;
        while i < n {
            let mut j = i + stride;
            while j < n {
                total += 1;
                if self.positions[i].distance(&self.positions[j]) < radius {
                    close += 1;
                }
                j += stride;
            }
            i += stride;
        }
        if total == 0 {
            0.0
        } else {
            close as f64 / total as f64
        }
    }
}

/// Render a positioned graph as a node-link SVG diagram.
///
/// Vertices are colored by `color_value` (blue→red) when present. Edges are
/// drawn for graphs up to `max_edges_drawn`; beyond that only vertices are
/// drawn (the same pragmatic cut-off large-graph tools make).
pub fn layout_to_svg(
    graph: &CsrGraph,
    layout: &PositionedGraph,
    width_px: f64,
    height_px: f64,
    max_edges_drawn: usize,
) -> String {
    let mut out = String::new();
    let Some((min, max)) = layout.bounds() else {
        let _ = writeln!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width_px}" height="{height_px}"/>"#
        );
        return out;
    };
    let span_x = (max.x - min.x).max(1e-9);
    let span_y = (max.y - min.y).max(1e-9);
    let scale = ((width_px - 20.0) / span_x).min((height_px - 20.0) / span_y);
    let to_px =
        |p: &Point2| -> (f64, f64) { ((p.x - min.x) * scale + 10.0, (p.y - min.y) * scale + 10.0) };

    let normalized_colors: Option<Vec<f64>> = layout.color_value.as_ref().map(|values| {
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if hi > lo {
            values.iter().map(|&v| (v - lo) / (hi - lo)).collect()
        } else {
            vec![0.5; values.len()]
        }
    });

    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width_px}" height="{height_px}" viewBox="0 0 {width_px} {height_px}">"#
    );
    if graph.edge_count() <= max_edges_drawn {
        for e in graph.edges() {
            let a = to_px(&layout.positions[e.u.index()]);
            let b = to_px(&layout.positions[e.v.index()]);
            let _ = writeln!(
                out,
                r##"  <line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#999999" stroke-width="0.4"/>"##,
                a.0, a.1, b.0, b.1
            );
        }
    }
    for v in graph.vertices() {
        let p = to_px(&layout.positions[v.index()]);
        let fill = match &normalized_colors {
            Some(colors) => {
                let t = colors[v.index()];
                // Simple blue→red ramp.
                let r = (255.0 * t) as u8;
                let b = (255.0 * (1.0 - t)) as u8;
                format!("#{r:02x}40{b:02x}")
            }
            None => "#3366cc".to_string(),
        };
        let _ =
            writeln!(out, r#"  <circle cx="{:.1}" cy="{:.1}" r="2.0" fill="{}"/>"#, p.0, p.1, fill);
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::GraphBuilder;

    #[test]
    fn point_distance() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn bounds_and_occlusion() {
        let layout = PositionedGraph {
            positions: vec![Point2::new(0.0, 0.0), Point2::new(1.0, 1.0), Point2::new(0.01, 0.01)],
            color_value: None,
        };
        let (min, max) = layout.bounds().unwrap();
        assert_eq!(min, Point2::new(0.0, 0.0));
        assert_eq!(max, Point2::new(1.0, 1.0));
        // One of the three pairs is very close.
        let occ = layout.occlusion_fraction(0.1);
        assert!(occ > 0.0 && occ < 1.0);
        assert_eq!(
            PositionedGraph { positions: vec![], color_value: None }.occlusion_fraction(0.1),
            0.0
        );
    }

    #[test]
    fn svg_contains_nodes_and_edges() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2)]);
        let g = b.build();
        let layout = PositionedGraph {
            positions: vec![Point2::new(0.0, 0.0), Point2::new(1.0, 0.0), Point2::new(0.5, 1.0)],
            color_value: Some(vec![0.0, 1.0, 2.0]),
        };
        let svg = layout_to_svg(&g, &layout, 200.0, 200.0, 1000);
        assert_eq!(svg.matches("<circle").count(), 3);
        assert_eq!(svg.matches("<line").count(), 2);
        // Edge drawing is suppressed beyond the cap.
        let svg = layout_to_svg(&g, &layout, 200.0, 200.0, 1);
        assert_eq!(svg.matches("<line").count(), 0);
    }
}
