//! OpenOrd-style multilevel force layout \[26\].
//!
//! OpenOrd coarsens the graph, lays out the coarse graph, then refines level
//! by level with force-directed passes whose edge-cutting schedule emphasizes
//! cluster separation. The simplified reimplementation keeps the multilevel
//! skeleton — heavy-edge-matching coarsening, recursive layout, placement of
//! children around their coarse parent, local spring refinement — which is
//! what gives OpenOrd its characteristic "cluster blob" geometry in
//! Figures 12(c,f,i) and 13(b).

use crate::spring::{spring_layout, SpringConfig};
use crate::svg::{Point2, PositionedGraph};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ugraph::{CsrGraph, GraphBuilder, VertexId};

/// Configuration of the multilevel layout.
#[derive(Clone, Copy, Debug)]
pub struct OpenOrdConfig {
    /// Stop coarsening when the graph has at most this many vertices.
    pub min_coarse_size: usize,
    /// Maximum number of coarsening levels.
    pub max_levels: usize,
    /// Spring iterations per refinement level.
    pub refine_iterations: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for OpenOrdConfig {
    fn default() -> Self {
        OpenOrdConfig { min_coarse_size: 50, max_levels: 8, refine_iterations: 25, seed: 0x0bd }
    }
}

/// Compute an OpenOrd-style multilevel layout.
pub fn openord_layout(graph: &CsrGraph, config: &OpenOrdConfig) -> PositionedGraph {
    let n = graph.vertex_count();
    if n == 0 {
        return PositionedGraph { positions: Vec::new(), color_value: None };
    }
    layout_recursive(graph, config, 0)
}

fn layout_recursive(graph: &CsrGraph, config: &OpenOrdConfig, level: usize) -> PositionedGraph {
    let n = graph.vertex_count();
    if n <= config.min_coarse_size || level >= config.max_levels {
        return spring_layout(
            graph,
            &SpringConfig {
                iterations: config.refine_iterations * 2,
                area_side: 1.0,
                seed: config.seed ^ level as u64,
            },
        );
    }

    // Heavy-edge matching: greedily pair each unmatched vertex with an
    // unmatched neighbor (highest-degree neighbor first, which tends to merge
    // within clusters).
    let mut matched = vec![u32::MAX; n];
    let mut order: Vec<VertexId> = graph.vertices().collect();
    order.sort_by_key(|v| std::cmp::Reverse(graph.degree(*v)));
    let mut coarse_count = 0u32;
    for &v in &order {
        if matched[v.index()] != u32::MAX {
            continue;
        }
        let partner =
            graph.neighbor_vertices(v).find(|u| matched[u.index()] == u32::MAX && *u != v);
        matched[v.index()] = coarse_count;
        if let Some(u) = partner {
            matched[u.index()] = coarse_count;
        }
        coarse_count += 1;
    }

    // Build the coarse graph.
    let mut coarse_builder = GraphBuilder::new();
    coarse_builder.ensure_vertex(coarse_count.saturating_sub(1));
    for e in graph.edges() {
        let cu = matched[e.u.index()];
        let cv = matched[e.v.index()];
        if cu != cv {
            coarse_builder.add_edge(cu, cv);
        }
    }
    let coarse = coarse_builder.build();
    let coarse_layout = layout_recursive(&coarse, config, level + 1);

    // Refine: place each fine vertex near its coarse representative with a
    // small deterministic jitter, then run a short spring pass.
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(level as u64 * 7919));
    let jitter = 0.5f64.powi(level as i32 + 3);
    let positions: Vec<Point2> = (0..n)
        .map(|v| {
            let c = matched[v] as usize;
            let base = coarse_layout.positions[c];
            Point2::new(
                (base.x + (rng.gen::<f64>() - 0.5) * jitter).clamp(0.0, 1.0),
                (base.y + (rng.gen::<f64>() - 0.5) * jitter).clamp(0.0, 1.0),
            )
        })
        .collect();

    refine_with_springs(graph, positions, config.refine_iterations)
}

/// A short local spring refinement starting from given positions.
fn refine_with_springs(
    graph: &CsrGraph,
    mut positions: Vec<Point2>,
    iterations: usize,
) -> PositionedGraph {
    let n = graph.vertex_count();
    if n <= 1 {
        return PositionedGraph { positions, color_value: None };
    }
    let k = (1.0 / n as f64).sqrt();
    for iteration in 0..iterations {
        let temperature = 0.03 * (1.0 - iteration as f64 / iterations.max(1) as f64) + 1e-4;
        let mut disp = vec![Point2::default(); n];
        // Attraction along edges plus mild repulsion from graph-adjacent
        // 2-hop crowding (cheap local forces only — the global structure comes
        // from the coarse level).
        for e in graph.edges() {
            let dx = positions[e.u.index()].x - positions[e.v.index()].x;
            let dy = positions[e.u.index()].y - positions[e.v.index()].y;
            let dist = (dx * dx + dy * dy).sqrt().max(1e-9);
            let attract = dist * dist / k;
            let repulse = k * k / dist;
            let net = attract - repulse;
            disp[e.u.index()].x -= dx / dist * net;
            disp[e.u.index()].y -= dy / dist * net;
            disp[e.v.index()].x += dx / dist * net;
            disp[e.v.index()].y += dy / dist * net;
        }
        for v in 0..n {
            let len = (disp[v].x * disp[v].x + disp[v].y * disp[v].y).sqrt().max(1e-9);
            let step = len.min(temperature);
            positions[v].x = (positions[v].x + disp[v].x / len * step).clamp(0.0, 1.0);
            positions[v].y = (positions[v].y + disp[v].y / len * step).clamp(0.0, 1.0);
        }
    }
    PositionedGraph { positions, color_value: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::generators::planted_partition;
    use ugraph::GraphBuilder;

    #[test]
    fn layout_is_deterministic_and_bounded() {
        let planted = planted_partition(&[60, 60], 0.2, 0.01, 3);
        let a = openord_layout(&planted.graph, &OpenOrdConfig::default());
        let b = openord_layout(&planted.graph, &OpenOrdConfig::default());
        assert_eq!(a.positions, b.positions);
        for p in &a.positions {
            assert!((0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y));
        }
        assert_eq!(a.positions.len(), 120);
    }

    #[test]
    fn planted_clusters_separate_spatially() {
        let planted = planted_partition(&[80, 80], 0.15, 0.002, 9);
        let layout = openord_layout(&planted.graph, &OpenOrdConfig::default());
        // Mean intra-cluster distance should be smaller than the distance
        // between the two cluster centroids' members.
        let centroid = |range: std::ops::Range<usize>| -> Point2 {
            let mut cx = 0.0;
            let mut cy = 0.0;
            let len = range.len() as f64;
            for v in range {
                cx += layout.positions[v].x;
                cy += layout.positions[v].y;
            }
            Point2::new(cx / len, cy / len)
        };
        let c0 = centroid(0..80);
        let c1 = centroid(80..160);
        let spread = |range: std::ops::Range<usize>, c: &Point2| -> f64 {
            let len = range.len() as f64;
            range.map(|v| layout.positions[v].distance(c)).sum::<f64>() / len
        };
        let s0 = spread(0..80, &c0);
        let s1 = spread(80..160, &c1);
        let separation = c0.distance(&c1);
        assert!(
            separation > 0.5 * (s0 + s1),
            "clusters should separate: centroids {separation:.3} apart vs spreads {s0:.3}/{s1:.3}"
        );
    }

    #[test]
    fn small_graphs_skip_coarsening() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2)]);
        let g = b.build();
        let layout = openord_layout(&g, &OpenOrdConfig::default());
        assert_eq!(layout.positions.len(), 3);
        let g = GraphBuilder::new().build();
        assert!(openord_layout(&g, &OpenOrdConfig::default()).positions.is_empty());
    }
}
