//! LaNet-vi-style K-Core shell layout \[6\].
//!
//! LaNet-vi places vertices on concentric annuli by core number: the densest
//! cores sit at the center, lower shells further out, and vertices of one
//! shell are spread angularly so that vertices of the same higher-core cluster
//! stay close. The densest K-Core therefore appears as a small central blob —
//! which is exactly why Task 1/Task 2 of the user study are harder with this
//! picture when that blob is small (Figures 12(b,e,h)).

use crate::svg::{Point2, PositionedGraph};
use measures::core_numbers;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ugraph::{CsrGraph, VertexId};

/// Result of a LaNet-vi-style layout.
#[derive(Clone, Debug)]
pub struct LanetLayout {
    /// Positions per vertex (and core numbers as the color value).
    pub layout: PositionedGraph,
    /// Core number per vertex (the shell index).
    pub core: Vec<usize>,
    /// The maximum core number (innermost shell).
    pub max_core: usize,
}

/// Compute the LaNet-vi-style shell layout.
///
/// * Vertices with core number `c` are placed on a ring of radius
///   `(max_core - c + jitter) / max_core` (innermost = densest).
/// * Angular positions group vertices by the connected component of their
///   `>= c` core subgraph, so each dense core occupies an angular sector.
pub fn lanet_layout(graph: &CsrGraph, seed: u64) -> LanetLayout {
    let n = graph.vertex_count();
    let decomposition = core_numbers(graph);
    let core = decomposition.core.clone();
    let max_core = decomposition.degeneracy.max(1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut positions = vec![Point2::default(); n];

    if n == 0 {
        return LanetLayout {
            layout: PositionedGraph { positions, color_value: None },
            core,
            max_core,
        };
    }

    // Angular anchor per vertex: BFS over the whole graph from the highest-core
    // vertex assigns consecutive angles, so connected regions share a sector.
    let mut order: Vec<VertexId> = graph.vertices().collect();
    order.sort_by_key(|v| std::cmp::Reverse(core[v.index()]));
    let mut angle_of = vec![f64::NAN; n];
    let mut next_angle = 0.0f64;
    let angle_step = std::f64::consts::TAU / n as f64;
    let mut queue = std::collections::VecDeque::new();
    for &start in &order {
        if !angle_of[start.index()].is_nan() {
            continue;
        }
        angle_of[start.index()] = next_angle;
        next_angle += angle_step;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for u in graph.neighbor_vertices(v) {
                if angle_of[u.index()].is_nan() {
                    angle_of[u.index()] = next_angle;
                    next_angle += angle_step;
                    queue.push_back(u);
                }
            }
        }
    }

    for v in 0..n {
        let shell = core[v];
        // Radius: innermost shell (max core) near 0, shell 0 at radius 1.
        let base_radius = (max_core - shell) as f64 / max_core as f64;
        let radius = (base_radius + rng.gen::<f64>() * 0.04).min(1.0);
        let angle = angle_of[v] + rng.gen::<f64>() * angle_step * 0.5;
        positions[v] =
            Point2::new(0.5 + 0.5 * radius * angle.cos(), 0.5 + 0.5 * radius * angle.sin());
    }

    LanetLayout {
        layout: PositionedGraph {
            positions,
            color_value: Some(core.iter().map(|&c| c as f64).collect()),
        },
        core,
        max_core,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::GraphBuilder;

    fn clique_with_tail() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for u in 0..6u32 {
            for v in (u + 1)..6u32 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(5, 6);
        b.add_edge(6, 7);
        b.build()
    }

    #[test]
    fn denser_cores_sit_closer_to_the_center() {
        let g = clique_with_tail();
        let result = lanet_layout(&g, 3);
        let center = Point2::new(0.5, 0.5);
        let clique_radius: f64 =
            (0..6).map(|v| result.layout.positions[v].distance(&center)).sum::<f64>() / 6.0;
        let tail_radius: f64 =
            (6..8).map(|v| result.layout.positions[v].distance(&center)).sum::<f64>() / 2.0;
        assert!(
            clique_radius < tail_radius,
            "clique at radius {clique_radius:.3} should be inside tail at {tail_radius:.3}"
        );
        assert_eq!(result.max_core, 5);
    }

    #[test]
    fn layout_is_deterministic_and_bounded() {
        let g = clique_with_tail();
        let a = lanet_layout(&g, 9);
        let b = lanet_layout(&g, 9);
        assert_eq!(a.layout.positions, b.layout.positions);
        for p in &a.layout.positions {
            assert!((0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y));
        }
        // Color value carries the core numbers.
        assert_eq!(
            a.layout.color_value.unwrap(),
            a.core.iter().map(|&c| c as f64).collect::<Vec<f64>>()
        );
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        let result = lanet_layout(&g, 0);
        assert!(result.layout.positions.is_empty());
    }
}
