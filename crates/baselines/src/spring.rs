//! Fruchterman–Reingold force-directed ("spring") layout \[31\].
//!
//! The classic baseline of Figures 6(a,b): nodes repel each other, edges pull
//! their endpoints together, and the step size cools over the iterations. The
//! implementation uses a simple spatial grid to keep the repulsion pass near
//! linear in the number of vertices, which is enough for the graph sizes the
//! figures and user study use.

use crate::svg::{Point2, PositionedGraph};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ugraph::CsrGraph;

/// Configuration of the spring layout.
#[derive(Clone, Copy, Debug)]
pub struct SpringConfig {
    /// Number of iterations.
    pub iterations: usize,
    /// Side length of the square layout area.
    pub area_side: f64,
    /// PRNG seed for the initial placement.
    pub seed: u64,
}

impl Default for SpringConfig {
    fn default() -> Self {
        SpringConfig { iterations: 60, area_side: 1.0, seed: 0x5eed }
    }
}

/// Compute a Fruchterman–Reingold layout.
pub fn spring_layout(graph: &CsrGraph, config: &SpringConfig) -> PositionedGraph {
    let n = graph.vertex_count();
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let side = config.area_side;
    let mut positions: Vec<Point2> =
        (0..n).map(|_| Point2::new(rng.gen::<f64>() * side, rng.gen::<f64>() * side)).collect();
    if n <= 1 {
        return PositionedGraph { positions, color_value: None };
    }

    // Ideal pairwise distance.
    let k = side * (1.0 / n as f64).sqrt();
    let mut displacement = vec![Point2::default(); n];

    for iteration in 0..config.iterations {
        let temperature =
            side * 0.1 * (1.0 - iteration as f64 / config.iterations.max(1) as f64) + 1e-4;
        for d in &mut displacement {
            *d = Point2::default();
        }

        // Repulsive forces via a uniform grid of cell size ~2k: only nearby
        // pairs contribute meaningfully, so only neighbors of grid cells are
        // examined.
        let cell = (2.0 * k).max(1e-6);
        let cols = (side / cell).ceil().max(1.0) as i64;
        let cell_of = |p: &Point2| -> (i64, i64) {
            (
                ((p.x / cell).floor() as i64).clamp(0, cols - 1),
                ((p.y / cell).floor() as i64).clamp(0, cols - 1),
            )
        };
        let mut grid: std::collections::HashMap<(i64, i64), Vec<usize>> =
            std::collections::HashMap::new();
        for (v, p) in positions.iter().enumerate() {
            grid.entry(cell_of(p)).or_default().push(v);
        }
        for (v, p) in positions.iter().enumerate() {
            let (cx, cy) = cell_of(p);
            for dx in -1..=1 {
                for dy in -1..=1 {
                    let Some(neighbors) = grid.get(&(cx + dx, cy + dy)) else { continue };
                    for &u in neighbors {
                        if u == v {
                            continue;
                        }
                        let delta_x = positions[v].x - positions[u].x;
                        let delta_y = positions[v].y - positions[u].y;
                        let dist = (delta_x * delta_x + delta_y * delta_y).sqrt().max(1e-9);
                        let force = k * k / dist;
                        displacement[v].x += delta_x / dist * force;
                        displacement[v].y += delta_y / dist * force;
                    }
                }
            }
        }

        // Attractive forces along edges.
        for e in graph.edges() {
            let delta_x = positions[e.u.index()].x - positions[e.v.index()].x;
            let delta_y = positions[e.u.index()].y - positions[e.v.index()].y;
            let dist = (delta_x * delta_x + delta_y * delta_y).sqrt().max(1e-9);
            let force = dist * dist / k;
            let fx = delta_x / dist * force;
            let fy = delta_y / dist * force;
            displacement[e.u.index()].x -= fx;
            displacement[e.u.index()].y -= fy;
            displacement[e.v.index()].x += fx;
            displacement[e.v.index()].y += fy;
        }

        // Apply displacements, limited by the temperature, and clamp to area.
        for v in 0..n {
            let d = &displacement[v];
            let len = (d.x * d.x + d.y * d.y).sqrt().max(1e-9);
            let step = len.min(temperature);
            positions[v].x = (positions[v].x + d.x / len * step).clamp(0.0, side);
            positions[v].y = (positions[v].y + d.y / len * step).clamp(0.0, side);
        }
    }

    PositionedGraph { positions, color_value: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::generators::planted_partition;
    use ugraph::GraphBuilder;

    #[test]
    fn layout_is_deterministic_and_in_bounds() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 0), (2, 3)]);
        let g = b.build();
        let a = spring_layout(&g, &SpringConfig::default());
        let c = spring_layout(&g, &SpringConfig::default());
        assert_eq!(a.positions, c.positions);
        for p in &a.positions {
            assert!((0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y));
        }
    }

    #[test]
    fn connected_vertices_end_up_closer_than_random_pairs() {
        let planted = planted_partition(&[30, 30], 0.35, 0.01, 5);
        let layout =
            spring_layout(&planted.graph, &SpringConfig { iterations: 80, ..Default::default() });
        // Average distance between adjacent vertices vs between a sample of
        // non-adjacent cross-community pairs.
        let mut adjacent = 0.0;
        let mut count = 0usize;
        for e in planted.graph.edges() {
            adjacent += layout.positions[e.u.index()].distance(&layout.positions[e.v.index()]);
            count += 1;
        }
        adjacent /= count as f64;
        let mut cross = 0.0;
        let mut cross_count = 0usize;
        for u in 0..30 {
            for v in 30..60 {
                if !planted.graph.has_edge(ugraph::VertexId(u), ugraph::VertexId(v)) {
                    cross += layout.positions[u as usize].distance(&layout.positions[v as usize]);
                    cross_count += 1;
                }
            }
        }
        cross /= cross_count as f64;
        assert!(
            adjacent < cross,
            "adjacent pairs ({adjacent:.3}) should sit closer than cross-community pairs ({cross:.3})"
        );
    }

    #[test]
    fn degenerate_graphs() {
        let g = GraphBuilder::new().build();
        assert!(spring_layout(&g, &SpringConfig::default()).positions.is_empty());
        let mut b = GraphBuilder::new();
        b.ensure_vertex(0);
        let g = b.build();
        assert_eq!(spring_layout(&g, &SpringConfig::default()).positions.len(), 1);
    }
}
