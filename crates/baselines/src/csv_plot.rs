//! CSV (Cohesive Subgraph Visualization) plot \[1\] — the density-curve baseline
//! of Figure 6(g).
//!
//! CSV orders the vertices so that cohesive groups appear consecutively and
//! plots a cohesion measure over that order; dense subgraphs show up as
//! plateaus/humps of the curve. Our simplified reimplementation orders
//! vertices by a greedy traversal that prefers staying inside the current
//! dense region (highest core number first, then neighbors by core number)
//! and plots each vertex's core number — giving the same "humps = dense
//! subgraphs, no containment information" reading the paper contrasts the
//! terrain with.

use measures::core_numbers;
use ugraph::{CsrGraph, VertexId};

/// A CSV cohesion plot: a vertex ordering plus the plotted cohesion value.
#[derive(Clone, Debug)]
pub struct CsvPlot {
    /// Vertex ids in plot order (x axis).
    pub order: Vec<VertexId>,
    /// Cohesion value (core number) per plot position (y axis).
    pub cohesion: Vec<f64>,
}

impl CsvPlot {
    /// Number of plotted points.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the plot is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The contiguous humps of the curve at cohesion level `>= alpha`:
    /// maximal runs of consecutive positions whose cohesion is at least
    /// `alpha`, returned as `(start, end_exclusive)` index pairs.
    pub fn humps_at(&self, alpha: f64) -> Vec<(usize, usize)> {
        let mut humps = Vec::new();
        let mut start: Option<usize> = None;
        for (i, &c) in self.cohesion.iter().enumerate() {
            if c >= alpha {
                if start.is_none() {
                    start = Some(i);
                }
            } else if let Some(s) = start.take() {
                humps.push((s, i));
            }
        }
        if let Some(s) = start {
            humps.push((s, self.cohesion.len()));
        }
        humps
    }

    /// Serialize as an SVG polyline chart.
    pub fn to_svg(&self, width_px: f64, height_px: f64) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width_px}" height="{height_px}" viewBox="0 0 {width_px} {height_px}">"#
        );
        if !self.is_empty() {
            let max_c = self.cohesion.iter().cloned().fold(f64::NEG_INFINITY, f64::max).max(1e-9);
            let points: Vec<String> = self
                .cohesion
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    let x = 10.0 + (width_px - 20.0) * i as f64 / self.len().max(2) as f64;
                    let y = height_px - 10.0 - (height_px - 20.0) * c / max_c;
                    format!("{x:.1},{y:.1}")
                })
                .collect();
            let _ = writeln!(
                out,
                r##"  <polyline points="{}" fill="none" stroke="#cc3333" stroke-width="1.5"/>"##,
                points.join(" ")
            );
        }
        out.push_str("</svg>\n");
        out
    }
}

/// Build the CSV plot of a graph.
pub fn csv_plot(graph: &CsrGraph) -> CsvPlot {
    let n = graph.vertex_count();
    let decomposition = core_numbers(graph);
    let core = &decomposition.core;

    // Greedy cohesive ordering: start from the highest-core vertex; repeatedly
    // visit the unvisited neighbor of the current frontier with the highest
    // core number; when the frontier empties, jump to the highest-core
    // unvisited vertex.
    let mut visited = vec![false; n];
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    // Max-heap keyed by (core, vertex id) of frontier candidates.
    let mut heap: std::collections::BinaryHeap<(usize, std::cmp::Reverse<u32>)> =
        std::collections::BinaryHeap::new();
    let mut remaining: Vec<VertexId> = graph.vertices().collect();
    remaining.sort_by_key(|v| std::cmp::Reverse(core[v.index()]));
    let mut next_seed = 0usize;

    while order.len() < n {
        if heap.is_empty() {
            // Jump to the next unvisited seed.
            while next_seed < remaining.len() && visited[remaining[next_seed].index()] {
                next_seed += 1;
            }
            if next_seed >= remaining.len() {
                break;
            }
            let seed = remaining[next_seed];
            heap.push((core[seed.index()], std::cmp::Reverse(seed.0)));
        }
        let Some((_, std::cmp::Reverse(v))) = heap.pop() else { continue };
        let v = VertexId(v);
        if visited[v.index()] {
            continue;
        }
        visited[v.index()] = true;
        order.push(v);
        for u in graph.neighbor_vertices(v) {
            if !visited[u.index()] {
                heap.push((core[u.index()], std::cmp::Reverse(u.0)));
            }
        }
    }

    let cohesion = order.iter().map(|v| core[v.index()] as f64).collect();
    CsvPlot { order, cohesion }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::GraphBuilder;

    fn two_cliques_and_a_path() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in (u + 1)..5u32 {
                b.add_edge(u, v); // K5: vertices 0..5
                b.add_edge(u + 5, v + 5); // K5: vertices 5..10
            }
        }
        b.extend_edges([(4u32, 10u32), (10, 11), (11, 5)]);
        b.build()
    }

    #[test]
    fn plot_covers_every_vertex_exactly_once() {
        let g = two_cliques_and_a_path();
        let plot = csv_plot(&g);
        assert_eq!(plot.len(), g.vertex_count());
        let mut seen: Vec<u32> = plot.order.iter().map(|v| v.0).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), g.vertex_count());
    }

    #[test]
    fn dense_cliques_form_humps() {
        let g = two_cliques_and_a_path();
        let plot = csv_plot(&g);
        // Both K5s have core number 4; they must appear as exactly two humps
        // of length 5 at level 4.
        let humps = plot.humps_at(4.0);
        assert_eq!(humps.len(), 2, "two separate dense humps: {humps:?}");
        for (s, e) in humps {
            assert_eq!(e - s, 5);
        }
        // At level 1 everything is a single hump (the graph is connected).
        assert_eq!(plot.humps_at(1.0).len(), 1);
    }

    #[test]
    fn svg_output_is_well_formed() {
        let g = two_cliques_and_a_path();
        let plot = csv_plot(&g);
        let svg = plot.to_svg(400.0, 200.0);
        assert!(svg.contains("<polyline"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // Empty plot still renders an empty SVG shell.
        let empty = CsvPlot { order: Vec::new(), cohesion: Vec::new() };
        assert!(empty.to_svg(100.0, 100.0).contains("<svg"));
        assert!(empty.is_empty());
    }
}
