//! # graph-terrain
//!
//! A Rust reproduction of *Analyzing and Visualizing Scalar Fields on Graphs*
//! (Zhang, Wang, Parthasarathy, ICDE 2017): scalar graphs, maximal
//! α-connected components, vertex/edge scalar trees, and the terrain-metaphor
//! visualization, together with every substrate the paper's evaluation needs
//! (graph generators, K-Core/K-Truss decompositions, centralities, community
//! and role measures, baseline layouts and a simulated user study).
//!
//! This crate is the façade: it re-exports the workspace crates and adds a
//! small high-level API ([`VertexTerrain`] / [`EdgeTerrain`]) that runs the
//! whole pipeline — scalar field → scalar tree → super tree → 2D layout → 3D
//! mesh → SVG — in one call, which is what the examples and most downstream
//! users want.
//!
//! ```
//! use graph_terrain::prelude::*;
//!
//! // A toy collaboration graph.
//! let graph = ugraph::generators::barabasi_albert(200, 3, 7);
//!
//! // K-Core terrain in one call.
//! let cores = measures::core_numbers(&graph);
//! let scalar: Vec<f64> = cores.core.iter().map(|&c| c as f64).collect();
//! let terrain = VertexTerrain::build(&graph, &scalar).unwrap();
//! assert!(terrain.super_tree.node_count() >= 1);
//! assert!(terrain.to_svg(800.0, 600.0).starts_with("<svg"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use baselines;
pub use measures;
pub use scalarfield;
pub use study;
pub use terrain;
pub use ugraph;

use scalarfield::{
    build_super_tree, edge_scalar_tree, vertex_scalar_tree, EdgeScalarGraph, SuperScalarTree,
    VertexScalarGraph,
};
use terrain::{
    build_terrain_mesh, layout_super_tree, terrain_to_svg, ColorScheme, LayoutConfig, MeshConfig,
    TerrainLayout, TerrainMesh,
};
use ugraph::{CsrGraph, Result};

/// Convenience prelude for downstream users and the examples.
pub mod prelude {
    pub use crate::{EdgeTerrain, VertexTerrain};
    pub use baselines;
    pub use measures;
    pub use scalarfield;
    pub use study;
    pub use terrain;
    pub use ugraph;
}

/// A fully built vertex-scalar terrain: super tree, 2D layout and 3D mesh.
#[derive(Clone, Debug)]
pub struct VertexTerrain {
    /// The super scalar tree (Algorithms 1 + 2).
    pub super_tree: SuperScalarTree,
    /// The nested 2D boundary layout.
    pub layout: TerrainLayout,
    /// The 3D terrain mesh.
    pub mesh: TerrainMesh,
}

/// A fully built edge-scalar terrain: super tree, 2D layout and 3D mesh.
#[derive(Clone, Debug)]
pub struct EdgeTerrain {
    /// The super scalar tree (Algorithms 3 + 2).
    pub super_tree: SuperScalarTree,
    /// The nested 2D boundary layout.
    pub layout: TerrainLayout,
    /// The 3D terrain mesh.
    pub mesh: TerrainMesh,
}

impl VertexTerrain {
    /// Run the full pipeline on a vertex scalar field with default options.
    pub fn build(graph: &CsrGraph, scalar: &[f64]) -> Result<Self> {
        Self::build_with(graph, scalar, &LayoutConfig::default(), &MeshConfig::default())
    }

    /// Run the full pipeline with explicit layout / mesh options (e.g. a
    /// secondary coloring scalar via [`ColorScheme::BySecondaryScalar`]).
    pub fn build_with(
        graph: &CsrGraph,
        scalar: &[f64],
        layout_config: &LayoutConfig,
        mesh_config: &MeshConfig,
    ) -> Result<Self> {
        let sg = VertexScalarGraph::new(graph, scalar)?;
        let super_tree = build_super_tree(&vertex_scalar_tree(&sg));
        let layout = layout_super_tree(&super_tree, layout_config);
        let mesh = build_terrain_mesh(&super_tree, &layout, mesh_config);
        Ok(VertexTerrain { super_tree, layout, mesh })
    }

    /// Render the terrain to an SVG document.
    pub fn to_svg(&self, width_px: f64, height_px: f64) -> String {
        terrain_to_svg(&self.mesh, width_px, height_px)
    }

    /// Re-color the mesh (e.g. by a second scalar) without recomputing the
    /// tree or the layout.
    pub fn recolor(&mut self, color: ColorScheme) {
        self.mesh = build_terrain_mesh(
            &self.super_tree,
            &self.layout,
            &MeshConfig { color, ..Default::default() },
        );
    }
}

impl EdgeTerrain {
    /// Run the full pipeline on an edge scalar field with default options.
    pub fn build(graph: &CsrGraph, scalar: &[f64]) -> Result<Self> {
        Self::build_with(graph, scalar, &LayoutConfig::default(), &MeshConfig::default())
    }

    /// Run the full pipeline with explicit layout / mesh options.
    pub fn build_with(
        graph: &CsrGraph,
        scalar: &[f64],
        layout_config: &LayoutConfig,
        mesh_config: &MeshConfig,
    ) -> Result<Self> {
        let sg = EdgeScalarGraph::new(graph, scalar)?;
        let super_tree = build_super_tree(&edge_scalar_tree(&sg));
        let layout = layout_super_tree(&super_tree, layout_config);
        let mesh = build_terrain_mesh(&super_tree, &layout, mesh_config);
        Ok(EdgeTerrain { super_tree, layout, mesh })
    }

    /// Render the terrain to an SVG document.
    pub fn to_svg(&self, width_px: f64, height_px: f64) -> String {
        terrain_to_svg(&self.mesh, width_px, height_px)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::GraphBuilder;

    #[test]
    fn vertex_terrain_end_to_end() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let graph = b.build();
        let cores = measures::core_numbers(&graph);
        let scalar: Vec<f64> = cores.core.iter().map(|&c| c as f64).collect();
        let mut t = VertexTerrain::build(&graph, &scalar).unwrap();
        assert_eq!(t.super_tree.total_members(), graph.vertex_count());
        assert!(t.mesh.triangle_count() > 0);
        assert!(t.to_svg(400.0, 300.0).contains("polygon"));
        // Re-coloring by degree keeps the geometry identical.
        let triangles = t.mesh.triangle_count();
        let degrees: Vec<f64> = graph.vertices().map(|v| graph.degree(v) as f64).collect();
        t.recolor(ColorScheme::BySecondaryScalar(degrees));
        assert_eq!(t.mesh.triangle_count(), triangles);
    }

    #[test]
    fn edge_terrain_end_to_end() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 0), (2, 3)]);
        let graph = b.build();
        let truss = measures::truss_numbers(&graph);
        let scalar: Vec<f64> = truss.truss.iter().map(|&t| t as f64).collect();
        let t = EdgeTerrain::build(&graph, &scalar).unwrap();
        assert_eq!(t.super_tree.total_members(), graph.edge_count());
        assert!(t.to_svg(400.0, 300.0).starts_with("<svg"));
    }

    #[test]
    fn mismatched_scalar_lengths_are_rejected() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        let graph = b.build();
        assert!(VertexTerrain::build(&graph, &[1.0]).is_err());
        assert!(EdgeTerrain::build(&graph, &[1.0, 2.0]).is_err());
    }
}
