//! # graph-terrain
//!
//! A Rust reproduction of *Analyzing and Visualizing Scalar Fields on Graphs*
//! (Zhang, Wang, Parthasarathy, ICDE 2017): scalar graphs, maximal
//! α-connected components, vertex/edge scalar trees, and the terrain-metaphor
//! visualization, together with every substrate the paper's evaluation needs
//! (graph generators, K-Core/K-Truss decompositions, centralities, community
//! and role measures, baseline layouts and a simulated user study).
//!
//! This crate is the façade: it re-exports the workspace crates and adds the
//! high-level entry point — the staged [`TerrainPipeline`] session. A session
//! owns the whole chain scalar field → scalar tree → super tree →
//! simplification → 2D layout → 3D mesh → SVG, computes each stage lazily,
//! caches it, and invalidates exactly the stages downstream of whatever knob
//! you turn: changing the colormap re-colors the mesh, changing the
//! simplification budget reuses the super tree, changing the scalar rebuilds
//! everything. Every accessor is fallible ([`TerrainError`]) and the session
//! records per-stage wall-clock [`StageTimings`] (the `tc`/`tv` split of the
//! paper's Table II).
//!
//! ```
//! use graph_terrain::prelude::*;
//!
//! // A toy collaboration graph.
//! let graph = ugraph::generators::barabasi_albert(200, 3, 7);
//!
//! // K-Core terrain: the session computes the measure itself.
//! let mut session = TerrainPipeline::from_measure(&graph, Measure::KCore);
//! assert!(session.super_tree().unwrap().node_count() >= 1);
//! assert!(session.svg().unwrap().starts_with("<svg"));
//!
//! // Explicit scalar fields work too, for vertex and edge fields alike.
//! let scalar: Vec<f64> = graph.vertices().map(|v| graph.degree(v) as f64).collect();
//! let mut by_degree = TerrainPipeline::vertex(&graph, scalar).unwrap();
//! assert!(by_degree.mesh().unwrap().triangle_count() > 0);
//! ```
//!
//! ## Migrating from `VertexTerrain` / `EdgeTerrain`
//!
//! The one-shot [`VertexTerrain`] / [`EdgeTerrain`] structs are deprecated
//! thin wrappers over the session. The mapping:
//!
//! | old                                        | new                                              |
//! |--------------------------------------------|--------------------------------------------------|
//! | `VertexTerrain::build(&g, &s)?`            | `TerrainPipeline::vertex(&g, s.to_vec())?`       |
//! | `EdgeTerrain::build(&g, &s)?`              | `TerrainPipeline::edge(&g, s.to_vec())?`         |
//! | `.super_tree` / `.layout` / `.mesh` fields | `.super_tree()?` / `.layout()?` / `.mesh()?` (or [`TerrainPipeline::stages`]) |
//! | `.to_svg(w, h)`                            | `.set_svg_size(SvgSize::new(w, h))` + `.svg()?`  |
//! | `.recolor(color)`                          | `.set_color(color)` (now on both field kinds)    |
//!
//! The wrappers never simplify; sessions default to the Section II-E render
//! budget of 4 000 super nodes (`SimplificationConfig::default()`), so pass
//! [`SimplificationConfig::disabled`] to reproduce wrapper output on huge
//! graphs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use baselines;
pub use measures;
pub use scalarfield;
pub use study;
pub use terrain;
pub use ugraph;

mod pipeline;

pub use pipeline::{
    DeltaReport, FieldKind, Measure, MeasureInfo, SharedGraph, SimplificationConfig, StageTimings,
    SvgSize, TerrainParts, TerrainPipeline, TerrainStages, MEASURES,
};
pub use terrain::{
    decode_gtsc, GtscDocument, GtscHeader, GtscItem, LodConfig, Rect, Scene, SceneItem,
    TerrainError, TerrainResult, TileKey,
};

use scalarfield::SuperScalarTree;
#[allow(deprecated)]
use terrain::terrain_to_svg;
use terrain::{
    build_terrain_mesh, ColorScheme, LayoutConfig, MeshConfig, TerrainLayout, TerrainMesh,
};
use ugraph::{CsrGraph, GraphError, Result};

/// Convenience prelude for downstream users and the examples.
pub mod prelude {
    pub use crate::{
        DeltaReport, FieldKind, Measure, MeasureInfo, SharedGraph, SimplificationConfig,
        StageTimings, SvgSize, TerrainError, TerrainParts, TerrainPipeline, TerrainResult,
        TerrainStages, MEASURES,
    };
    #[allow(deprecated)]
    pub use crate::{EdgeTerrain, VertexTerrain};
    pub use baselines;
    pub use measures;
    pub use scalarfield;
    pub use study;
    pub use terrain;
    pub use ugraph;
}

/// A fully built vertex-scalar terrain: super tree, 2D layout and 3D mesh.
#[deprecated(
    since = "0.2.0",
    note = "use the staged `TerrainPipeline` session (`TerrainPipeline::vertex`) instead"
)]
#[derive(Clone, Debug)]
pub struct VertexTerrain {
    /// The super scalar tree (Algorithms 1 + 2).
    pub super_tree: SuperScalarTree,
    /// The nested 2D boundary layout.
    pub layout: TerrainLayout,
    /// The 3D terrain mesh.
    pub mesh: TerrainMesh,
    // The config the mesh was built with, so `recolor` changes only the
    // color and keeps the height scale / baseline.
    mesh_config: MeshConfig,
}

/// A fully built edge-scalar terrain: super tree, 2D layout and 3D mesh.
#[deprecated(
    since = "0.2.0",
    note = "use the staged `TerrainPipeline` session (`TerrainPipeline::edge`) instead"
)]
#[derive(Clone, Debug)]
pub struct EdgeTerrain {
    /// The super scalar tree (Algorithms 3 + 2).
    pub super_tree: SuperScalarTree,
    /// The nested 2D boundary layout.
    pub layout: TerrainLayout,
    /// The 3D terrain mesh.
    pub mesh: TerrainMesh,
    // The config the mesh was built with, so `recolor` changes only the
    // color and keeps the height scale / baseline.
    mesh_config: MeshConfig,
}

/// Shared wrapper body: run a pipeline session with wrapper-compatible
/// settings (no simplification) and move its stage outputs out
/// ([`TerrainPipeline::into_parts`] — no copies).
fn run_wrapper_session(
    mut session: TerrainPipeline<'_>,
    layout_config: &LayoutConfig,
    mesh_config: &MeshConfig,
) -> Result<(SuperScalarTree, TerrainLayout, TerrainMesh)> {
    session
        .set_simplification(SimplificationConfig::disabled())
        .set_layout(*layout_config)
        .set_mesh(mesh_config.clone());
    let parts = session.into_parts().map_err(terrain_error_to_graph)?;
    Ok((parts.super_tree, parts.layout, parts.mesh))
}

/// The wrappers' historical signature returns [`GraphError`]; with
/// wrapper-compatible settings the layout/mesh/config variants of
/// [`TerrainError`] are unreachable, but map them defensively anyway.
fn terrain_error_to_graph(e: TerrainError) -> GraphError {
    match e {
        TerrainError::Graph(g) => g,
        other => GraphError::InvalidConfig { what: "terrain build", message: other.to_string() },
    }
}

#[allow(deprecated)]
impl VertexTerrain {
    /// Run the full pipeline on a vertex scalar field with default options.
    pub fn build(graph: &CsrGraph, scalar: &[f64]) -> Result<Self> {
        Self::build_with(graph, scalar, &LayoutConfig::default(), &MeshConfig::default())
    }

    /// Run the full pipeline with explicit layout / mesh options (e.g. a
    /// secondary coloring scalar via [`ColorScheme::BySecondaryScalar`]).
    pub fn build_with(
        graph: &CsrGraph,
        scalar: &[f64],
        layout_config: &LayoutConfig,
        mesh_config: &MeshConfig,
    ) -> Result<Self> {
        let session =
            TerrainPipeline::vertex(graph, scalar.to_vec()).map_err(terrain_error_to_graph)?;
        let (super_tree, layout, mesh) = run_wrapper_session(session, layout_config, mesh_config)?;
        Ok(VertexTerrain { super_tree, layout, mesh, mesh_config: mesh_config.clone() })
    }

    /// Render the terrain to an SVG document.
    pub fn to_svg(&self, width_px: f64, height_px: f64) -> String {
        terrain_to_svg(&self.mesh, width_px, height_px)
    }

    /// Re-color the mesh (e.g. by a second scalar) without recomputing the
    /// tree or the layout.
    pub fn recolor(&mut self, color: ColorScheme) {
        self.mesh_config.color = color;
        self.mesh = build_terrain_mesh(&self.super_tree, &self.layout, &self.mesh_config);
    }
}

#[allow(deprecated)]
impl EdgeTerrain {
    /// Run the full pipeline on an edge scalar field with default options.
    pub fn build(graph: &CsrGraph, scalar: &[f64]) -> Result<Self> {
        Self::build_with(graph, scalar, &LayoutConfig::default(), &MeshConfig::default())
    }

    /// Run the full pipeline with explicit layout / mesh options.
    pub fn build_with(
        graph: &CsrGraph,
        scalar: &[f64],
        layout_config: &LayoutConfig,
        mesh_config: &MeshConfig,
    ) -> Result<Self> {
        let session =
            TerrainPipeline::edge(graph, scalar.to_vec()).map_err(terrain_error_to_graph)?;
        let (super_tree, layout, mesh) = run_wrapper_session(session, layout_config, mesh_config)?;
        Ok(EdgeTerrain { super_tree, layout, mesh, mesh_config: mesh_config.clone() })
    }

    /// Render the terrain to an SVG document.
    pub fn to_svg(&self, width_px: f64, height_px: f64) -> String {
        terrain_to_svg(&self.mesh, width_px, height_px)
    }

    /// Re-color the mesh (e.g. by a second scalar) without recomputing the
    /// tree or the layout — the vertex/edge API asymmetry is gone, both
    /// wrappers inherit this from the unified session core.
    pub fn recolor(&mut self, color: ColorScheme) {
        self.mesh_config.color = color;
        self.mesh = build_terrain_mesh(&self.super_tree, &self.layout, &self.mesh_config);
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use ugraph::GraphBuilder;

    #[test]
    fn vertex_terrain_wrapper_end_to_end() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let graph = b.build();
        let cores = measures::core_numbers(&graph);
        let scalar: Vec<f64> = cores.core.iter().map(|&c| c as f64).collect();
        let mut t = VertexTerrain::build(&graph, &scalar).unwrap();
        assert_eq!(t.super_tree.total_members(), graph.vertex_count());
        assert!(t.mesh.triangle_count() > 0);
        assert!(t.to_svg(400.0, 300.0).contains("polygon"));
        // Re-coloring by degree keeps the geometry identical.
        let triangles = t.mesh.triangle_count();
        let degrees: Vec<f64> = graph.vertices().map(|v| graph.degree(v) as f64).collect();
        t.recolor(ColorScheme::BySecondaryScalar(degrees));
        assert_eq!(t.mesh.triangle_count(), triangles);
    }

    #[test]
    fn edge_terrain_wrapper_end_to_end_and_recolor() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 0), (2, 3)]);
        let graph = b.build();
        let truss = measures::truss_numbers(&graph);
        let scalar: Vec<f64> = truss.truss.iter().map(|&t| t as f64).collect();
        let mut t = EdgeTerrain::build(&graph, &scalar).unwrap();
        assert_eq!(t.super_tree.total_members(), graph.edge_count());
        assert!(t.to_svg(400.0, 300.0).starts_with("<svg"));
        // The edge wrapper now recolors too (the old API asymmetry).
        let triangles = t.mesh.triangle_count();
        let tri_counts: Vec<f64> =
            measures::edge_triangle_counts(&graph).iter().map(|&c| c as f64).collect();
        t.recolor(ColorScheme::BySecondaryScalar(tri_counts));
        assert_eq!(t.mesh.triangle_count(), triangles);
    }

    #[test]
    fn recolor_keeps_the_build_time_mesh_config() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let graph = b.build();
        let scalar = vec![2.0, 2.0, 2.0, 1.0, 1.0];
        let config = MeshConfig { height_scale: 5.0, ..Default::default() };
        let mut t =
            VertexTerrain::build_with(&graph, &scalar, &LayoutConfig::default(), &config).unwrap();
        let max_z = |mesh: &TerrainMesh| mesh.bounds().unwrap().1 .2;
        let built_height = max_z(&t.mesh);
        let degrees: Vec<f64> = graph.vertices().map(|v| graph.degree(v) as f64).collect();
        t.recolor(ColorScheme::BySecondaryScalar(degrees));
        assert_eq!(max_z(&t.mesh), built_height, "recolor must not change the height scale");
    }

    #[test]
    fn wrappers_match_the_session_bit_for_bit() {
        let graph = ugraph::generators::barabasi_albert(150, 3, 2);
        let cores = measures::core_numbers(&graph);
        let scalar: Vec<f64> = cores.core.iter().map(|&c| c as f64).collect();
        let wrapper = VertexTerrain::build(&graph, &scalar).unwrap();
        let mut session = TerrainPipeline::vertex(&graph, scalar).unwrap();
        session.set_simplification(SimplificationConfig::disabled());
        session.set_svg_size(SvgSize::new(400.0, 300.0));
        let stages = session.stages().unwrap();
        assert_eq!(stages.super_tree.node_count(), wrapper.super_tree.node_count());
        assert_eq!(stages.layout.rects, wrapper.layout.rects);
        assert_eq!(stages.mesh.triangles, wrapper.mesh.triangles);
        assert_eq!(session.svg().unwrap(), wrapper.to_svg(400.0, 300.0));
    }

    #[test]
    fn mismatched_scalar_lengths_are_rejected() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        let graph = b.build();
        assert!(VertexTerrain::build(&graph, &[1.0]).is_err());
        assert!(EdgeTerrain::build(&graph, &[1.0, 2.0]).is_err());
    }
}
