//! The staged [`TerrainPipeline`] session — one fallible, cached,
//! parallelism-aware entry point for every terrain build.
//!
//! The paper's workflow is explicitly staged:
//!
//! ```text
//! scalar field ──► scalar tree ──► super tree ──► simplified ("render") tree
//!   (measure)      (Alg. 1 / 3)     (Alg. 2)         (Section II-E)
//!                                                        │
//!                              SVG ◄── 3D mesh ◄── 2D layout
//! ```
//!
//! A [`TerrainPipeline`] is a *session* over that chain: every stage output
//! is computed lazily on first demand, cached, and invalidated precisely when
//! a knob upstream of it changes. An analyst flipping a colormap pays for a
//! mesh re-color, not a tree rebuild:
//!
//! | mutator                 | recomputes                                  |
//! |-------------------------|---------------------------------------------|
//! | [`set_scalar`]          | everything                                  |
//! | [`set_simplification`]  | render tree, layout, mesh, SVG              |
//! | [`set_layout`]          | layout, mesh, SVG                           |
//! | [`set_mesh`] / [`set_color`] | mesh, SVG                              |
//! | [`set_svg_size`]        | SVG                                         |
//! | [`set_lod`]             | retained scene (tiles)                      |
//! | [`set_parallelism`]     | nothing (results are thread-count invariant)|
//! | [`apply_delta`]         | scalar (incrementally where the measure allows) and everything downstream; nothing for no-op batches |
//!
//! The retained [`scene`] stage (the tile / pan-zoom payloads) hangs off
//! the *unsimplified* super tree, so [`set_simplification`] and the mesh /
//! SVG knobs never invalidate it; [`set_layout`] and anything that rebuilds
//! the tree do.
//!
//! [`apply_delta`]: TerrainPipeline::apply_delta
//! [`set_scalar`]: TerrainPipeline::set_scalar
//! [`set_simplification`]: TerrainPipeline::set_simplification
//! [`set_layout`]: TerrainPipeline::set_layout
//! [`set_mesh`]: TerrainPipeline::set_mesh
//! [`set_color`]: TerrainPipeline::set_color
//! [`set_svg_size`]: TerrainPipeline::set_svg_size
//! [`set_lod`]: TerrainPipeline::set_lod
//! [`set_parallelism`]: TerrainPipeline::set_parallelism
//! [`scene`]: TerrainPipeline::scene
//!
//! Every stage accessor returns `Result<_, TerrainError>` — no stage panics
//! on bad input — and the session records wall-clock [`StageTimings`]
//! (the `tc` / `tv` split of the paper's Table II) as it computes.
//!
//! ```
//! use graph_terrain::{Measure, TerrainPipeline};
//!
//! let graph = ugraph::generators::barabasi_albert(200, 3, 7);
//! let mut session = TerrainPipeline::from_measure(&graph, Measure::KCore);
//! let svg = session.svg().unwrap().to_string();
//! assert!(svg.starts_with("<svg"));
//!
//! // Re-coloring by degree rebuilds only the mesh stage; the tree and the
//! // layout are reused from cache.
//! let degrees: Vec<f64> = measures::degrees(&graph).iter().map(|&d| d as f64).collect();
//! session.set_color(terrain::ColorScheme::BySecondaryScalar(degrees));
//! assert!(session.svg().unwrap().starts_with("<svg"));
//! assert!(session.timings().tree_construction_seconds().is_some());
//! ```

use measures::{DeltaCost, KCoreDecomposition, KTrussDecomposition};
use scalarfield::{
    build_super_tree, edge_scalar_tree, try_simplify_super_tree, vertex_scalar_tree,
    EdgeScalarGraph, ScalarTree, SuperScalarTree, VertexScalarGraph,
};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;
use terrain::{
    try_build_terrain_mesh, try_layout_super_tree, ColorScheme, Exporter, LayoutConfig, LodConfig,
    MeshConfig, RenderScene, Scene, SceneTiming, Svg, TerrainError, TerrainLayout, TerrainMesh,
    TerrainResult,
};
use ugraph::delta::{CompactedDelta, DeltaApplyStats, DeltaOverlay, GraphDelta};
use ugraph::io::GraphSource;
use ugraph::par::Parallelism;
use ugraph::{CsrGraph, GraphStorage, MappedCsrGraph};

/// Whether a session's scalar field lives on vertices or on edges.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FieldKind {
    /// One scalar per vertex (Algorithm 1 builds the tree).
    Vertex,
    /// One scalar per edge (Algorithm 3 builds the tree).
    Edge,
}

/// A built-in scalar field the pipeline can compute itself
/// ([`TerrainPipeline::from_measure`]), using the session's
/// [`Parallelism`] budget where the measure supports it.
///
/// Every measure is deterministic and thread-count invariant (the
/// [`ugraph::par`] guarantee), so changing the parallelism never changes the
/// terrain.
#[derive(Clone, Debug, PartialEq)]
pub enum Measure {
    /// K-Core number per vertex (Batagelj–Zaveršnik peeling).
    KCore,
    /// Degree per vertex.
    Degree,
    /// PageRank per vertex (default damping/tolerance).
    PageRank,
    /// Closeness centrality per vertex.
    Closeness,
    /// Brandes betweenness centrality per vertex, sampled over `samples`
    /// sources with `seed` (`samples >= n` falls back to the exact
    /// computation).
    BetweennessSampled {
        /// Number of sampled sources.
        samples: usize,
        /// RNG seed for the source sample.
        seed: u64,
    },
    /// K-Truss number per edge.
    KTruss,
    /// Triangle count per edge.
    EdgeTriangles,
}

impl Measure {
    /// Whether this measure produces a vertex or an edge scalar field.
    pub fn field_kind(&self) -> FieldKind {
        match self {
            Measure::KCore
            | Measure::Degree
            | Measure::PageRank
            | Measure::Closeness
            | Measure::BetweennessSampled { .. } => FieldKind::Vertex,
            Measure::KTruss | Measure::EdgeTriangles => FieldKind::Edge,
        }
    }

    /// Parse a measure from its request-facing name (the `measure` query
    /// parameter of the terrain server, case-insensitive): `"kcore"` /
    /// `"k-core"`, `"degree"`, `"pagerank"`, `"closeness"`,
    /// `"betweenness"` (sampled, with the defaults of
    /// [`Measure::BETWEENNESS_DEFAULT`]), `"ktruss"` / `"k-truss"`, and
    /// `"edge-triangles"` / `"triangles"`. `None` for anything else; the
    /// accepted names are [`Measure::known_names`].
    pub fn from_name(name: &str) -> Option<Measure> {
        match name.to_ascii_lowercase().as_str() {
            "kcore" | "k-core" => Some(Measure::KCore),
            "degree" => Some(Measure::Degree),
            "pagerank" => Some(Measure::PageRank),
            "closeness" => Some(Measure::Closeness),
            "betweenness" | "betweenness-sampled" => Some(Measure::BETWEENNESS_DEFAULT),
            "ktruss" | "k-truss" => Some(Measure::KTruss),
            "edge-triangles" | "triangles" => Some(Measure::EdgeTriangles),
            _ => None,
        }
    }

    /// The canonical names [`Measure::from_name`] accepts, for error
    /// messages that must list the alternatives. Derived from the
    /// [`MEASURES`] table, so it cannot desync from the per-measure
    /// metadata.
    pub fn known_names() -> &'static [&'static str] {
        const NAMES: [&str; MEASURES.len()] = {
            let mut names = [""; MEASURES.len()];
            let mut i = 0;
            while i < MEASURES.len() {
                names[i] = MEASURES[i].name;
                i += 1;
            }
            names
        };
        &NAMES
    }

    /// How much of this measure survives a graph delta (see
    /// [`TerrainPipeline::apply_delta`]): `Local` measures update only
    /// around dirty endpoints, `DirtyRegion` measures re-peel only the
    /// connected components a change touched, `Full` measures recompute
    /// from scratch.
    pub fn delta_cost(&self) -> DeltaCost {
        match self {
            Measure::Degree | Measure::EdgeTriangles => DeltaCost::Local,
            Measure::KCore | Measure::KTruss => DeltaCost::DirtyRegion,
            Measure::PageRank | Measure::Closeness | Measure::BetweennessSampled { .. } => {
                DeltaCost::Full
            }
        }
    }

    /// The sampled-betweenness setting [`Measure::from_name`] resolves
    /// `"betweenness"` to: 64 sources, seed 20170419 (the scale ladder's
    /// seed). `samples >= n` graphs fall back to the exact computation.
    pub const BETWEENNESS_DEFAULT: Measure =
        Measure::BetweennessSampled { samples: 64, seed: 20170419 };

    /// Short human-readable name (used in reports and logs).
    pub fn name(&self) -> &'static str {
        match self {
            Measure::KCore => "k-core",
            Measure::Degree => "degree",
            Measure::PageRank => "pagerank",
            Measure::Closeness => "closeness",
            Measure::BetweennessSampled { .. } => "betweenness(sampled)",
            Measure::KTruss => "k-truss",
            Measure::EdgeTriangles => "edge-triangles",
        }
    }

    fn compute(&self, graph: &dyn GraphStorage, parallelism: Parallelism) -> Vec<f64> {
        match self {
            Measure::KCore => {
                measures::core_numbers(graph).core.iter().map(|&c| c as f64).collect()
            }
            Measure::Degree => measures::degrees(graph).iter().map(|&d| d as f64).collect(),
            Measure::PageRank => {
                measures::pagerank_with(graph, &measures::PageRankConfig::default(), parallelism)
            }
            Measure::Closeness => measures::closeness_centrality_with(graph, parallelism),
            Measure::BetweennessSampled { samples, seed } => {
                measures::betweenness_centrality_sampled_with(graph, *samples, *seed, parallelism)
            }
            Measure::KTruss => measures::truss_numbers_with(graph, parallelism)
                .truss
                .iter()
                .map(|&t| t as f64)
                .collect(),
            Measure::EdgeTriangles => measures::edge_triangle_counts_with(graph, parallelism)
                .iter()
                .map(|&t| t as f64)
                .collect(),
        }
    }
}

/// One row of the measure metadata table: the canonical request-facing
/// name together with the measure's incremental-recompute tier.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MeasureInfo {
    /// The canonical name [`Measure::from_name`] accepts.
    pub name: &'static str,
    /// How much of the measure survives a graph delta.
    pub delta_cost: DeltaCost,
}

/// The single-source measure table: every request-facing measure with its
/// delta-recompute tier, in the order the server and the docs list them.
/// [`Measure::known_names`] and the per-measure delta report derive from
/// this slice, so adding a measure here cannot silently desync them.
pub const MEASURES: &[MeasureInfo] = &[
    MeasureInfo { name: "kcore", delta_cost: DeltaCost::DirtyRegion },
    MeasureInfo { name: "degree", delta_cost: DeltaCost::Local },
    MeasureInfo { name: "pagerank", delta_cost: DeltaCost::Full },
    MeasureInfo { name: "closeness", delta_cost: DeltaCost::Full },
    MeasureInfo { name: "betweenness", delta_cost: DeltaCost::Full },
    MeasureInfo { name: "ktruss", delta_cost: DeltaCost::DirtyRegion },
    MeasureInfo { name: "edge-triangles", delta_cost: DeltaCost::Local },
];

/// The Section II-E simplification knob: super trees larger than
/// `node_budget` nodes are discretized to `levels` scalar levels before
/// rendering; smaller trees render as-is.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct SimplificationConfig {
    /// Maximum super-tree size rendered without simplification
    /// (`None` = never simplify).
    pub node_budget: Option<usize>,
    /// Number of evenly spaced scalar levels to snap to when simplifying
    /// (must be at least 1; checked at the simplification stage).
    pub levels: usize,
}

impl Default for SimplificationConfig {
    fn default() -> Self {
        SimplificationConfig { node_budget: Some(4_000), levels: 64 }
    }
}

impl SimplificationConfig {
    /// Never simplify, regardless of tree size.
    pub fn disabled() -> Self {
        SimplificationConfig { node_budget: None, levels: 64 }
    }
}

/// Output size of the rendered SVG, in pixels.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SvgSize {
    /// Width in pixels.
    pub width_px: f64,
    /// Height in pixels.
    pub height_px: f64,
}

impl Default for SvgSize {
    fn default() -> Self {
        SvgSize { width_px: 900.0, height_px: 700.0 }
    }
}

impl SvgSize {
    /// An explicit size.
    pub fn new(width_px: f64, height_px: f64) -> Self {
        SvgSize { width_px, height_px }
    }

    fn validate(&self) -> TerrainResult<()> {
        for (name, v) in [("width_px", self.width_px), ("height_px", self.height_px)] {
            if !v.is_finite() || v <= 0.0 {
                return Err(TerrainError::Config {
                    what: "svg size",
                    message: format!("{name} must be finite and positive, got {v}"),
                });
            }
        }
        Ok(())
    }
}

/// Wall-clock seconds spent in each stage of a session, filled in as stages
/// compute. A stage served from cache keeps the timing of the run that built
/// it; an invalidated stage resets to `None` until recomputed.
///
/// The Table II mapping: [`tree_construction_seconds`](Self::tree_construction_seconds)
/// is `tc`, [`visualization_seconds`](Self::visualization_seconds) is `tv`
/// (the naive dual-graph baseline `te` is measured by `bench::pipeline`,
/// which delegates everything else to this session API).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct StageTimings {
    /// Computing the scalar field (`None` for user-provided scalars).
    pub scalar_seconds: Option<f64>,
    /// Building the scalar tree (Algorithm 1 or 3, incl. field validation).
    pub tree_seconds: Option<f64>,
    /// Merging into the super tree (Algorithm 2).
    pub super_tree_seconds: Option<f64>,
    /// Deciding on / applying the Section II-E simplification.
    pub simplify_seconds: Option<f64>,
    /// The nested 2D boundary layout.
    pub layout_seconds: Option<f64>,
    /// The 3D mesh extrusion (incl. coloring).
    pub mesh_seconds: Option<f64>,
    /// SVG serialization.
    pub svg_seconds: Option<f64>,
    /// The retained LOD scene build (layout pass + quadtree index).
    pub scene_seconds: Option<f64>,
}

impl StageTimings {
    /// Table II's `tc`: scalar tree + super tree construction. `None` until
    /// both stages have run.
    pub fn tree_construction_seconds(&self) -> Option<f64> {
        Some(self.tree_seconds? + self.super_tree_seconds?)
    }

    /// Table II's `tv`: simplification + layout + mesh + SVG serialization.
    /// `None` until all four stages have run.
    pub fn visualization_seconds(&self) -> Option<f64> {
        Some(self.simplify_seconds? + self.layout_seconds? + self.mesh_seconds? + self.svg_seconds?)
    }
}

/// A borrowed view of every structural stage of a session at once, for
/// callers that need the tree *and* the layout (peak queries, treemaps)
/// without fighting the borrow checker over repeated `&mut` accessors.
#[derive(Copy, Clone, Debug)]
pub struct TerrainStages<'a> {
    /// The full super scalar tree (before simplification).
    pub super_tree: &'a SuperScalarTree,
    /// The tree actually rendered (simplified iff over the node budget).
    pub render_tree: &'a SuperScalarTree,
    /// The 2D layout of the render tree.
    pub layout: &'a TerrainLayout,
    /// The 3D mesh of the render tree.
    pub mesh: &'a TerrainMesh,
}

/// The owned stage outputs moved out of a finished session by
/// [`TerrainPipeline::into_parts`].
#[derive(Clone, Debug)]
pub struct TerrainParts {
    /// The scalar field the terrain was built from.
    pub scalar: Vec<f64>,
    /// The full super scalar tree (before simplification).
    pub super_tree: SuperScalarTree,
    /// The simplified tree, when the node budget triggered; `None` means the
    /// super tree itself was rendered.
    pub simplified: Option<SuperScalarTree>,
    /// The 2D layout of the rendered tree.
    pub layout: TerrainLayout,
    /// The 3D mesh of the rendered tree.
    pub mesh: TerrainMesh,
    /// The per-stage timings recorded while building.
    pub timings: StageTimings,
}

/// What [`TerrainPipeline::apply_delta`] did: the overlay's apply counters
/// plus how the session's cached scalar field crossed the mutation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DeltaReport {
    /// Counters for the applied batch (inserted / deleted / no-ops …).
    pub stats: DeltaApplyStats,
    /// Vertex count after the delta.
    pub vertex_count: usize,
    /// Edge count after the delta.
    pub edge_count: usize,
    /// Vertices flagged dirty (endpoints of effective structural changes).
    pub dirty_vertex_count: usize,
    /// Whether the graph actually changed. `false` means every stage cache
    /// was kept and nothing was invalidated.
    pub structural: bool,
    /// How the scalar field crossed the delta: `"unchanged"` (no-op
    /// batch), `"incremental"` (Local / DirtyRegion measure updated around
    /// the dirty vertices), `"recompute"` (Full measure dropped, recomputed
    /// lazily), `"uncomputed"` (measure never computed yet), `"kept"`
    /// (explicit vertex scalar still valid) or `"remapped"` (explicit edge
    /// scalar carried through the edge remap).
    pub scalar_path: &'static str,
    /// The session's measure name, for measure sessions.
    pub measure: Option<&'static str>,
    /// The measure's incremental-recompute tier, for measure sessions.
    pub delta_cost: Option<DeltaCost>,
}

/// A reference-counted, shareable graph backend — the unit a multi-session
/// registry (like the terrain server's `GraphStore` registry) hands out.
///
/// Cloning is an `Arc` bump: every session started from the same
/// `SharedGraph` reads the same owned CSR arrays or the same kernel memory
/// mapping, so N concurrent sessions over one 10M-edge snapshot cost one
/// graph, not N.
#[derive(Clone)]
pub enum SharedGraph {
    /// A heap-owned CSR graph (ingested through a [`GraphSource`] or built
    /// in memory).
    Owned(Arc<CsrGraph>),
    /// A binary v3 snapshot served by [`MappedCsrGraph`] — zero-copy where
    /// the platform allows it.
    Mapped(Arc<MappedCsrGraph>),
}

impl SharedGraph {
    /// Wrap an owned graph for sharing.
    pub fn new(graph: CsrGraph) -> Self {
        SharedGraph::Owned(Arc::new(graph))
    }

    /// Open a binary v3 snapshot memory-mapped (heap fallback where mapping
    /// is unavailable), fully validated — see [`MappedCsrGraph::open`].
    pub fn open_mapped(path: impl AsRef<Path>) -> TerrainResult<Self> {
        Ok(SharedGraph::Mapped(Arc::new(MappedCsrGraph::open(path.as_ref())?)))
    }

    /// Validate an in-memory binary v3 snapshot and wrap it for sharing —
    /// the upload path of a server that receives snapshot bytes over the
    /// wire and never touches disk.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> TerrainResult<Self> {
        Ok(SharedGraph::Mapped(Arc::new(MappedCsrGraph::from_bytes(bytes)?)))
    }

    /// The graph as an abstract [`GraphStorage`] view.
    pub fn storage(&self) -> &dyn GraphStorage {
        match self {
            SharedGraph::Owned(graph) => &**graph,
            SharedGraph::Mapped(graph) => &**graph,
        }
    }

    /// Short backend discriminator (`"owned"` / `"mapped"`), for stats and
    /// registry listings.
    pub fn backend_name(&self) -> &'static str {
        match self {
            SharedGraph::Owned(_) => "owned",
            SharedGraph::Mapped(_) => "mapped",
        }
    }

    /// Whether the graph is served from a live kernel memory map.
    pub fn is_memory_mapped(&self) -> bool {
        match self {
            SharedGraph::Owned(_) => false,
            SharedGraph::Mapped(graph) => graph.is_memory_mapped(),
        }
    }

    /// Apply a [`GraphDelta`] copy-on-write: when the batch changes the
    /// graph (an edge's presence toggled, or a new vertex was mentioned),
    /// the compacted result replaces `self` as a fresh owned graph — other
    /// `Arc` holders keep reading the old one. A batch of pure no-ops
    /// (redundant inserts, absent deletes, reweights) leaves the backend
    /// untouched, so a memory-mapped snapshot stays mapped.
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> DeltaApplyStats {
        let (stats, replacement) = {
            let base = self.storage();
            let mut overlay = DeltaOverlay::new(base);
            overlay.apply(delta);
            let structural = !overlay.is_structurally_unchanged()
                || overlay.vertex_count() != base.vertex_count();
            (overlay.stats(), structural.then(|| overlay.compact().graph))
        };
        if let Some(graph) = replacement {
            *self = SharedGraph::Owned(Arc::new(graph));
        }
        stats
    }
}

impl std::fmt::Debug for SharedGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedGraph")
            .field("backend", &self.backend_name())
            .field("vertices", &self.storage().vertex_count())
            .field("edges", &self.storage().edge_count())
            .finish()
    }
}

/// How a session holds its graph: borrowed from the caller (the historical
/// constructors) or shared/owned via a [`SharedGraph`] (sessions started
/// from a [`GraphSource`], a mapped snapshot, or a registry).
#[derive(Clone)]
enum GraphStore<'g> {
    Borrowed(&'g dyn GraphStorage),
    Shared(SharedGraph),
}

impl GraphStore<'_> {
    fn get(&self) -> &dyn GraphStorage {
        match self {
            GraphStore::Borrowed(graph) => *graph,
            GraphStore::Shared(graph) => graph.storage(),
        }
    }
}

// Manual `Debug`: `&dyn GraphStorage` carries no `Debug` bound, and the
// interesting facts are the backend kind and the graph size anyway.
impl std::fmt::Debug for GraphStore<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self {
            GraphStore::Borrowed(_) => "borrowed",
            GraphStore::Shared(graph) => graph.backend_name(),
        };
        let graph = self.get();
        f.debug_struct("GraphStore")
            .field("kind", &kind)
            .field("vertices", &graph.vertex_count())
            .field("edges", &graph.edge_count())
            .finish()
    }
}

/// A staged, cached terrain-build session over one graph.
///
/// The stage/invalidation contract: every stage output (scalar field, scalar
/// tree, super tree, render tree, layout, mesh, SVG) is computed lazily on
/// first demand and cached; each `set_*` knob invalidates exactly the stages
/// downstream of it ([`set_color`](Self::set_color) rebuilds only the mesh
/// coloring, [`set_simplification`](Self::set_simplification) reuses the
/// super tree, [`set_scalar`](Self::set_scalar) reuses nothing).
///
/// Construct with [`TerrainPipeline::vertex`], [`TerrainPipeline::edge`]
/// (explicit scalar fields, validated up front),
/// [`TerrainPipeline::from_measure`] (the session computes the field itself,
/// lazily, under the session's [`Parallelism`] budget) or
/// [`TerrainPipeline::from_source`] (ingest a graph from disk or any reader
/// through [`GraphSource`]). Artifacts stream out through any
/// [`Exporter`] backend via [`render_to`](Self::render_to) /
/// [`write_artifact`](Self::write_artifact).
#[derive(Clone, Debug)]
pub struct TerrainPipeline<'g> {
    graph: GraphStore<'g>,
    field: FieldKind,
    measure: Option<Measure>,
    parallelism: Parallelism,
    simplification: SimplificationConfig,
    layout_config: LayoutConfig,
    mesh_config: MeshConfig,
    svg_size: SvgSize,
    lod_config: LodConfig,
    // Stage caches, upstream to downstream. `render_tree` distinguishes
    // "not computed" (outer None) from "within budget, render the super tree
    // itself" (Some(None)) to avoid cloning unsimplified trees.
    scalar: Option<Vec<f64>>,
    scalar_tree: Option<ScalarTree>,
    super_tree: Option<SuperScalarTree>,
    render_tree: Option<Option<SuperScalarTree>>,
    layout: Option<TerrainLayout>,
    mesh: Option<TerrainMesh>,
    svg: Option<String>,
    // The retained LOD scene is a side stage off the *unsimplified* super
    // tree: simplification and the mesh/SVG knobs never invalidate it.
    scene: Option<Scene>,
    timings: StageTimings,
}

impl<'g> TerrainPipeline<'g> {
    fn new(graph: GraphStore<'g>, field: FieldKind) -> Self {
        TerrainPipeline {
            graph,
            field,
            measure: None,
            parallelism: Parallelism::Serial,
            simplification: SimplificationConfig::default(),
            layout_config: LayoutConfig::default(),
            mesh_config: MeshConfig::default(),
            svg_size: SvgSize::default(),
            lod_config: LodConfig::default(),
            scalar: None,
            scalar_tree: None,
            super_tree: None,
            render_tree: None,
            layout: None,
            mesh: None,
            svg: None,
            scene: None,
            timings: StageTimings::default(),
        }
    }

    /// Start a session over a vertex scalar field. The field is validated up
    /// front (one finite entry per vertex), so every later stage can assume a
    /// totally ordered scalar.
    pub fn vertex(graph: &'g dyn GraphStorage, scalar: Vec<f64>) -> TerrainResult<Self> {
        VertexScalarGraph::new(graph, &scalar)?;
        let mut p = Self::new(GraphStore::Borrowed(graph), FieldKind::Vertex);
        p.scalar = Some(scalar);
        Ok(p)
    }

    /// Start a session over an edge scalar field (validated up front: one
    /// finite entry per edge).
    pub fn edge(graph: &'g dyn GraphStorage, scalar: Vec<f64>) -> TerrainResult<Self> {
        EdgeScalarGraph::new(graph, &scalar)?;
        let mut p = Self::new(GraphStore::Borrowed(graph), FieldKind::Edge);
        p.scalar = Some(scalar);
        Ok(p)
    }

    /// Start a session whose scalar field is a built-in [`Measure`], computed
    /// lazily on first demand under the session's current [`Parallelism`]
    /// budget. Infallible: the measure always produces a valid field.
    pub fn from_measure(graph: &'g dyn GraphStorage, measure: Measure) -> Self {
        let mut p = Self::new(GraphStore::Borrowed(graph), measure.field_kind());
        p.measure = Some(measure);
        p
    }

    /// Ingest a graph through a [`GraphSource`] and start a measure session
    /// over it. The session *owns* the loaded graph, so it has no borrow tie
    /// to the caller (`TerrainPipeline<'static>`).
    ///
    /// Per-edge weights carried by the input are not consumed by the built-in
    /// measures; to build a terrain over file weights, load via
    /// [`GraphSource::load`] and hand the weights to
    /// [`TerrainPipeline::edge`].
    ///
    /// ```no_run
    /// use graph_terrain::{Measure, TerrainPipeline};
    /// use terrain::Svg;
    /// use ugraph::io::GraphSource;
    ///
    /// let mut session =
    ///     TerrainPipeline::from_source(GraphSource::path("astro.csv"), Measure::KCore)?;
    /// session.write_artifact(&Svg::default(), "astro_kcore.svg")?;
    /// # Ok::<(), graph_terrain::TerrainError>(())
    /// ```
    pub fn from_source(
        source: GraphSource,
        measure: Measure,
    ) -> TerrainResult<TerrainPipeline<'static>> {
        let parsed = source.load()?;
        Ok(Self::from_shared(SharedGraph::new(parsed.graph), measure))
    }

    /// Start a measure session over a [`SharedGraph`] — the entry point for
    /// multi-session callers (the terrain server's graph registry): the
    /// session holds an `Arc` clone, so any number of concurrent sessions
    /// share one set of CSR arrays (or one kernel mapping). Like
    /// [`from_source`](Self::from_source) the session has no borrow tie to
    /// the caller.
    pub fn from_shared(graph: SharedGraph, measure: Measure) -> TerrainPipeline<'static> {
        let mut p = TerrainPipeline::new(GraphStore::Shared(graph), measure.field_kind());
        p.measure = Some(measure);
        p
    }

    /// Open a binary v3 snapshot as a memory-mapped graph and start a measure
    /// session over it without deserializing the CSR arrays — the session
    /// reads them zero-copy straight out of the page cache (see
    /// [`MappedCsrGraph`]). Like [`from_source`](Self::from_source) the
    /// session owns its storage, so it has no borrow tie to the caller.
    ///
    /// The snapshot is fully validated at open (checksum, section framing,
    /// CSR invariants); v1/v2 snapshots and corrupt files are rejected with a
    /// [`TerrainError`], never a panic.
    ///
    /// ```no_run
    /// use graph_terrain::{Measure, TerrainPipeline};
    /// use terrain::Svg;
    ///
    /// let mut session = TerrainPipeline::open_mapped("astro.gtsb", Measure::KCore)?;
    /// session.write_artifact(&Svg::default(), "astro_kcore.svg")?;
    /// # Ok::<(), graph_terrain::TerrainError>(())
    /// ```
    pub fn open_mapped(
        path: impl AsRef<Path>,
        measure: Measure,
    ) -> TerrainResult<TerrainPipeline<'static>> {
        Ok(Self::from_shared(SharedGraph::open_mapped(path)?, measure))
    }

    // ------------------------------------------------------------------
    // Knobs. Each setter invalidates exactly the stages downstream of it.
    // ------------------------------------------------------------------

    /// Set the thread budget for measure computation. Never invalidates
    /// anything: every measure is bit-identical across thread counts (the
    /// [`ugraph::par`] contract), so parallelism is pure wall-clock.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) -> &mut Self {
        self.parallelism = parallelism;
        self
    }

    /// Replace the scalar field (validated against the session's field kind).
    /// Invalidates every stage; a session started with
    /// [`from_measure`](Self::from_measure) becomes an explicit-scalar
    /// session.
    pub fn set_scalar(&mut self, scalar: Vec<f64>) -> TerrainResult<&mut Self> {
        match self.field {
            FieldKind::Vertex => {
                VertexScalarGraph::new(self.graph.get(), &scalar)?;
            }
            FieldKind::Edge => {
                EdgeScalarGraph::new(self.graph.get(), &scalar)?;
            }
        }
        self.measure = None;
        self.scalar = Some(scalar);
        self.timings.scalar_seconds = None;
        self.invalidate_from_tree();
        Ok(self)
    }

    /// Set the Section II-E simplification budget. Reuses the cached super
    /// tree; rebuilds render tree, layout, mesh and SVG on next demand.
    pub fn set_simplification(&mut self, simplification: SimplificationConfig) -> &mut Self {
        self.simplification = simplification;
        self.invalidate_from_render_tree();
        self
    }

    /// Set the 2D layout configuration (validated at the layout stage).
    /// Rebuilds layout, mesh, SVG and the retained scene on next demand
    /// (the scene's LOD pass runs in the same layout space).
    pub fn set_layout(&mut self, config: LayoutConfig) -> &mut Self {
        self.layout_config = config;
        self.invalidate_from_layout();
        self.invalidate_scene();
        self
    }

    /// Set the full mesh configuration (validated at the mesh stage).
    /// Rebuilds mesh and SVG on next demand.
    pub fn set_mesh(&mut self, config: MeshConfig) -> &mut Self {
        self.mesh_config = config;
        self.invalidate_from_mesh();
        self
    }

    /// Change only the coloring scheme, keeping the rest of the mesh
    /// configuration. Rebuilds mesh and SVG on next demand — the tree and
    /// layout are reused from cache.
    pub fn set_color(&mut self, color: ColorScheme) -> &mut Self {
        self.mesh_config.color = color;
        self.invalidate_from_mesh();
        self
    }

    /// Set the SVG output size. Re-serializes only the SVG on next demand.
    pub fn set_svg_size(&mut self, size: SvgSize) -> &mut Self {
        self.svg_size = size;
        self.svg = None;
        self.timings.svg_seconds = None;
        self
    }

    /// Set the scene level-of-detail configuration (validated immediately).
    /// Rebuilds only the retained [`scene`](Self::scene) on next demand —
    /// the structural stages and the mesh/SVG artifacts are untouched.
    pub fn set_lod(&mut self, config: LodConfig) -> TerrainResult<&mut Self> {
        config.validate()?;
        self.lod_config = config;
        self.invalidate_scene();
        Ok(self)
    }

    /// Apply a [`GraphDelta`] to the session's graph and invalidate exactly
    /// the affected stages.
    ///
    /// A batch with no effective change (redundant inserts, absent deletes,
    /// reweights) invalidates **nothing** — every cached stage, including
    /// the SVG, stays valid. A structural change swaps the graph for the
    /// compacted result (copy-on-write: borrowed and mapped backends become
    /// session-owned graphs) and rebuilds the tree stages downward through
    /// the session's usual downstream-only invalidation, carrying the
    /// scalar field across where the measure's [`DeltaCost`] tier allows:
    ///
    /// | session scalar                              | carried across as                        |
    /// |---------------------------------------------|------------------------------------------|
    /// | `Local` / `DirtyRegion` measure, computed   | incremental update around dirty vertices |
    /// | `Full` measure, computed                    | dropped; recomputed lazily               |
    /// | measure, not yet computed                   | nothing to carry                         |
    /// | explicit vertex scalar                      | kept (error if the vertex set grew)      |
    /// | explicit edge scalar                        | remapped (error if edges were inserted)  |
    ///
    /// The explicit-scalar error paths reject the delta *before* touching
    /// the session — it stays fully usable on its old graph; call
    /// [`set_scalar`](Self::set_scalar) with a field for the new graph and
    /// re-apply.
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> TerrainResult<DeltaReport> {
        let old_vertex_count = self.graph.get().vertex_count();
        let measure_name = self.measure.as_ref().map(|m| m.name());
        let measure_cost = self.measure.as_ref().map(|m| m.delta_cost());
        let compacted = {
            let base = self.graph.get();
            let mut overlay = DeltaOverlay::new(base);
            overlay.apply(delta);
            let structural =
                !overlay.is_structurally_unchanged() || overlay.vertex_count() != old_vertex_count;
            if !structural {
                return Ok(DeltaReport {
                    stats: overlay.stats(),
                    vertex_count: base.vertex_count(),
                    edge_count: base.edge_count(),
                    dirty_vertex_count: 0,
                    structural: false,
                    scalar_path: "unchanged",
                    measure: measure_name,
                    delta_cost: measure_cost,
                });
            }
            overlay.compact()
        };

        // Decide the scalar's fate before mutating anything, so the error
        // paths leave the session untouched.
        enum ScalarUpdate {
            Keep,
            Clear,
            Set(Vec<f64>, Option<f64>),
        }
        let (update, scalar_path) = match (&self.measure, &self.scalar) {
            (Some(measure), Some(old_scalar)) => match measure.delta_cost() {
                DeltaCost::Local | DeltaCost::DirtyRegion => {
                    let started = Instant::now();
                    let updated = incremental_measure_scalar(
                        measure,
                        &compacted,
                        old_scalar,
                        self.parallelism,
                    );
                    let seconds = started.elapsed().as_secs_f64();
                    (ScalarUpdate::Set(updated, Some(seconds)), "incremental")
                }
                DeltaCost::Full => (ScalarUpdate::Clear, "recompute"),
            },
            (Some(_), None) => (ScalarUpdate::Keep, "uncomputed"),
            (None, Some(old_scalar)) => match self.field {
                FieldKind::Vertex => {
                    if compacted.graph.vertex_count() == old_vertex_count {
                        (ScalarUpdate::Keep, "kept")
                    } else {
                        return Err(TerrainError::Config {
                            what: "graph delta",
                            message: format!(
                                "the delta grew the graph from {} to {} vertices but the \
                                 session has an explicit vertex scalar; call set_scalar with \
                                 a field for the new graph and re-apply",
                                old_vertex_count,
                                compacted.graph.vertex_count()
                            ),
                        });
                    }
                }
                FieldKind::Edge => {
                    if compacted.base_edge.iter().all(Option::is_some) {
                        let remapped = compacted
                            .base_edge
                            .iter()
                            .map(|e| old_scalar[e.expect("all checked Some").index()])
                            .collect();
                        (ScalarUpdate::Set(remapped, None), "remapped")
                    } else {
                        return Err(TerrainError::Config {
                            what: "graph delta",
                            message: "the delta inserted edges but the session has an explicit \
                                      edge scalar with no value for them; call set_scalar with \
                                      a field for the new graph and re-apply"
                                .to_string(),
                        });
                    }
                }
            },
            (None, None) => unreachable!("a session always has a scalar or a measure"),
        };

        let report = DeltaReport {
            stats: compacted.stats,
            vertex_count: compacted.graph.vertex_count(),
            edge_count: compacted.graph.edge_count(),
            dirty_vertex_count: compacted.dirty.iter().filter(|&&d| d).count(),
            structural: true,
            scalar_path,
            measure: measure_name,
            delta_cost: measure_cost,
        };
        self.graph = GraphStore::Shared(SharedGraph::new(compacted.graph));
        match update {
            ScalarUpdate::Keep => {}
            ScalarUpdate::Clear => {
                self.scalar = None;
                self.timings.scalar_seconds = None;
            }
            ScalarUpdate::Set(scalar, seconds) => {
                self.scalar = Some(scalar);
                self.timings.scalar_seconds = seconds;
            }
        }
        self.invalidate_from_tree();
        Ok(report)
    }

    fn invalidate_from_tree(&mut self) {
        self.scalar_tree = None;
        self.super_tree = None;
        self.timings.tree_seconds = None;
        self.timings.super_tree_seconds = None;
        self.invalidate_scene();
        self.invalidate_from_render_tree();
    }

    fn invalidate_from_render_tree(&mut self) {
        self.render_tree = None;
        self.timings.simplify_seconds = None;
        self.invalidate_from_layout();
    }

    fn invalidate_from_layout(&mut self) {
        self.layout = None;
        self.timings.layout_seconds = None;
        self.invalidate_from_mesh();
    }

    fn invalidate_from_mesh(&mut self) {
        self.mesh = None;
        self.timings.mesh_seconds = None;
        self.svg = None;
        self.timings.svg_seconds = None;
    }

    /// The retained scene is invalidated by tree rebuilds and layout
    /// changes only — deliberately *not* part of the render-tree chain,
    /// because it is built from the unsimplified super tree.
    fn invalidate_scene(&mut self) {
        self.scene = None;
        self.timings.scene_seconds = None;
    }

    // ------------------------------------------------------------------
    // Read-only session info.
    // ------------------------------------------------------------------

    /// The graph this session builds over, as an abstract [`GraphStorage`]
    /// view — borrowed, session-owned, or memory-mapped.
    pub fn graph(&self) -> &dyn GraphStorage {
        self.graph.get()
    }

    /// Whether the session's graph is served from a live kernel memory map
    /// (only possible for [`open_mapped`](Self::open_mapped) sessions on
    /// platforms where mapping succeeded).
    pub fn is_memory_mapped(&self) -> bool {
        match &self.graph {
            GraphStore::Shared(graph) => graph.is_memory_mapped(),
            GraphStore::Borrowed(_) => false,
        }
    }

    /// Whether this is a vertex- or an edge-scalar session.
    pub fn field_kind(&self) -> FieldKind {
        self.field
    }

    /// The session's current thread budget.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// The current simplification configuration.
    pub fn simplification(&self) -> SimplificationConfig {
        self.simplification
    }

    /// Per-stage wall-clock timings recorded so far (see [`StageTimings`]).
    pub fn timings(&self) -> StageTimings {
        self.timings
    }

    // ------------------------------------------------------------------
    // Stage accessors: lazy, cached, fallible.
    // ------------------------------------------------------------------

    /// The scalar field (stage 0). Computes the measure on first demand for
    /// [`from_measure`](Self::from_measure) sessions.
    pub fn scalar(&mut self) -> TerrainResult<&[f64]> {
        self.ensure_scalar()?;
        Ok(self.scalar.as_deref().expect("ensured"))
    }

    /// The scalar tree (Algorithm 1 for vertex fields, Algorithm 3 for edge
    /// fields).
    pub fn scalar_tree(&mut self) -> TerrainResult<&ScalarTree> {
        self.ensure_scalar_tree()?;
        Ok(self.scalar_tree.as_ref().expect("ensured"))
    }

    /// The super scalar tree (Algorithm 2), before any simplification.
    pub fn super_tree(&mut self) -> TerrainResult<&SuperScalarTree> {
        self.ensure_super_tree()?;
        Ok(self.super_tree.as_ref().expect("ensured"))
    }

    /// The tree the terrain is rendered from: the super tree itself when it
    /// fits the [`SimplificationConfig::node_budget`], the simplified tree
    /// otherwise.
    pub fn render_tree(&mut self) -> TerrainResult<&SuperScalarTree> {
        self.ensure_render_tree()?;
        Ok(self.render_tree_ref())
    }

    /// The nested 2D boundary layout of the render tree.
    pub fn layout(&mut self) -> TerrainResult<&TerrainLayout> {
        self.ensure_layout()?;
        Ok(self.layout.as_ref().expect("ensured"))
    }

    /// The 3D terrain mesh of the render tree.
    pub fn mesh(&mut self) -> TerrainResult<&TerrainMesh> {
        self.ensure_mesh()?;
        Ok(self.mesh.as_ref().expect("ensured"))
    }

    /// The rendered SVG document.
    pub fn svg(&mut self) -> TerrainResult<&str> {
        self.ensure_svg()?;
        Ok(self.svg.as_deref().expect("ensured"))
    }

    /// The retained level-of-detail scene over the **unsimplified** super
    /// tree — the stage tile and pan/zoom payloads are served from (see
    /// [`terrain::Scene`]). Built lazily on first demand; invalidated by
    /// tree rebuilds ([`set_scalar`](Self::set_scalar),
    /// [`apply_delta`](Self::apply_delta)), [`set_layout`](Self::set_layout)
    /// and [`set_lod`](Self::set_lod), but *not* by
    /// [`set_simplification`](Self::set_simplification) or any mesh / SVG
    /// knob: a tile's bytes depend only on the graph, the measure, the
    /// layout and the LOD configuration.
    pub fn scene(&mut self) -> TerrainResult<&Scene> {
        self.ensure_scene()?;
        Ok(self.scene.as_ref().expect("ensured"))
    }

    /// The current scene level-of-detail configuration.
    pub fn lod_config(&self) -> LodConfig {
        self.lod_config
    }

    /// Force every structural stage (through the mesh) and borrow them all at
    /// once — for peak queries, treemaps and exports that need the tree and
    /// the layout together.
    pub fn stages(&mut self) -> TerrainResult<TerrainStages<'_>> {
        self.ensure_mesh()?;
        Ok(TerrainStages {
            super_tree: self.super_tree.as_ref().expect("ensured"),
            render_tree: self.render_tree_ref(),
            layout: self.layout.as_ref().expect("ensured"),
            mesh: self.mesh.as_ref().expect("ensured"),
        })
    }

    /// Run the whole pipeline to the end and return the SVG (owned). Sugar
    /// for [`svg`](Self::svg)` + to_string` for one-shot callers.
    pub fn build(&mut self) -> TerrainResult<String> {
        Ok(self.svg()?.to_string())
    }

    /// Render the session through any [`Exporter`] backend, streaming the
    /// artifact into `writer`. The backend sees a [`RenderScene`] borrowed
    /// from the cached stages (forcing them on first demand) together with
    /// the per-stage timings recorded so far, so repeated renders across
    /// backends share one pipeline run.
    ///
    /// The built-in [`Svg`] backend at the session's
    /// [`SvgSize`] produces exactly the bytes of [`svg`](Self::svg).
    pub fn render_to(
        &mut self,
        exporter: &dyn Exporter,
        writer: &mut dyn std::io::Write,
    ) -> TerrainResult<()> {
        self.ensure_mesh()?;
        let timings = self.scene_timings();
        let scene = RenderScene::new(
            self.render_tree_ref(),
            self.layout.as_ref().expect("ensured"),
            self.mesh.as_ref().expect("ensured"),
        )
        .with_timings(&timings);
        exporter.write_to(&scene, writer)
    }

    /// [`render_to`](Self::render_to) minus the wall-clock stage timings:
    /// the scene handed to the backend carries geometry only, so the bytes
    /// depend on nothing but the graph, the measure and the configuration.
    /// Backends that serialize timings (`json`, `ascii` headers) become
    /// reproducible byte-for-byte across runs — the form a
    /// content-addressed artifact cache must serve and revalidate against.
    pub fn render_deterministic_to(
        &mut self,
        exporter: &dyn Exporter,
        writer: &mut dyn std::io::Write,
    ) -> TerrainResult<()> {
        self.ensure_mesh()?;
        let scene = RenderScene::new(
            self.render_tree_ref(),
            self.layout.as_ref().expect("ensured"),
            self.mesh.as_ref().expect("ensured"),
        );
        exporter.write_to(&scene, writer)
    }

    /// [`render_to`](Self::render_to) into a freshly created (buffered) file.
    pub fn write_artifact(
        &mut self,
        exporter: &dyn Exporter,
        path: impl AsRef<Path>,
    ) -> TerrainResult<()> {
        let file = std::fs::File::create(path.as_ref()).map_err(TerrainError::from)?;
        let mut writer = std::io::BufWriter::new(file);
        self.render_to(exporter, &mut writer)?;
        std::io::Write::flush(&mut writer)?;
        Ok(())
    }

    /// The recorded stage timings as exporter-facing [`SceneTiming`]s
    /// (stages that have not run are absent).
    fn scene_timings(&self) -> Vec<SceneTiming> {
        let t = &self.timings;
        [
            ("scalar", t.scalar_seconds),
            ("tree", t.tree_seconds),
            ("super_tree", t.super_tree_seconds),
            ("simplify", t.simplify_seconds),
            ("layout", t.layout_seconds),
            ("mesh", t.mesh_seconds),
            ("svg", t.svg_seconds),
            ("scene", t.scene_seconds),
        ]
        .into_iter()
        .filter_map(|(stage, seconds)| seconds.map(|seconds| SceneTiming { stage, seconds }))
        .collect()
    }

    /// Force every structural stage (through the mesh), then consume the
    /// session and move its cached outputs out without copying — for one-shot
    /// callers that want owned results (the deprecated `VertexTerrain` /
    /// `EdgeTerrain` wrappers are built on this).
    pub fn into_parts(mut self) -> TerrainResult<TerrainParts> {
        self.ensure_mesh()?;
        Ok(TerrainParts {
            scalar: self.scalar.take().expect("ensured"),
            super_tree: self.super_tree.take().expect("ensured"),
            simplified: self.render_tree.take().expect("ensured"),
            layout: self.layout.take().expect("ensured"),
            mesh: self.mesh.take().expect("ensured"),
            timings: self.timings,
        })
    }

    // ------------------------------------------------------------------
    // Stage computation.
    // ------------------------------------------------------------------

    fn render_tree_ref(&self) -> &SuperScalarTree {
        match self.render_tree.as_ref().expect("render tree ensured") {
            Some(simplified) => simplified,
            None => self.super_tree.as_ref().expect("super tree ensured"),
        }
    }

    fn ensure_scalar(&mut self) -> TerrainResult<()> {
        if self.scalar.is_some() {
            return Ok(());
        }
        let measure =
            self.measure.as_ref().expect("a session always has a scalar or a measure").clone();
        let started = Instant::now();
        let scalar = measure.compute(self.graph.get(), self.parallelism);
        self.timings.scalar_seconds = Some(started.elapsed().as_secs_f64());
        self.scalar = Some(scalar);
        Ok(())
    }

    fn ensure_scalar_tree(&mut self) -> TerrainResult<()> {
        self.ensure_scalar()?;
        if self.scalar_tree.is_some() {
            return Ok(());
        }
        let scalar = self.scalar.as_ref().expect("ensured");
        let started = Instant::now();
        let tree = match self.field {
            FieldKind::Vertex => {
                vertex_scalar_tree(&VertexScalarGraph::new(self.graph.get(), scalar)?)
            }
            FieldKind::Edge => edge_scalar_tree(&EdgeScalarGraph::new(self.graph.get(), scalar)?),
        };
        self.timings.tree_seconds = Some(started.elapsed().as_secs_f64());
        self.scalar_tree = Some(tree);
        Ok(())
    }

    fn ensure_super_tree(&mut self) -> TerrainResult<()> {
        self.ensure_scalar_tree()?;
        if self.super_tree.is_some() {
            return Ok(());
        }
        let started = Instant::now();
        let super_tree = build_super_tree(self.scalar_tree.as_ref().expect("ensured"));
        self.timings.super_tree_seconds = Some(started.elapsed().as_secs_f64());
        self.super_tree = Some(super_tree);
        Ok(())
    }

    fn ensure_render_tree(&mut self) -> TerrainResult<()> {
        self.ensure_super_tree()?;
        if self.render_tree.is_some() {
            return Ok(());
        }
        let super_tree = self.super_tree.as_ref().expect("ensured");
        let started = Instant::now();
        let simplified = match self.simplification.node_budget {
            Some(budget) if super_tree.node_count() > budget => {
                Some(try_simplify_super_tree(super_tree, self.simplification.levels)?)
            }
            _ => None,
        };
        self.timings.simplify_seconds = Some(started.elapsed().as_secs_f64());
        self.render_tree = Some(simplified);
        Ok(())
    }

    fn ensure_layout(&mut self) -> TerrainResult<()> {
        self.ensure_render_tree()?;
        if self.layout.is_some() {
            return Ok(());
        }
        let started = Instant::now();
        let layout = try_layout_super_tree(self.render_tree_ref(), &self.layout_config)?;
        self.timings.layout_seconds = Some(started.elapsed().as_secs_f64());
        self.layout = Some(layout);
        Ok(())
    }

    fn ensure_mesh(&mut self) -> TerrainResult<()> {
        self.ensure_layout()?;
        if self.mesh.is_some() {
            return Ok(());
        }
        let started = Instant::now();
        let mesh = try_build_terrain_mesh(
            self.render_tree_ref(),
            self.layout.as_ref().expect("ensured"),
            &self.mesh_config,
        )?;
        self.timings.mesh_seconds = Some(started.elapsed().as_secs_f64());
        self.mesh = Some(mesh);
        Ok(())
    }

    fn ensure_scene(&mut self) -> TerrainResult<()> {
        self.ensure_super_tree()?;
        if self.scene.is_some() {
            return Ok(());
        }
        let started = Instant::now();
        let scene = Scene::build(
            self.super_tree.as_ref().expect("ensured"),
            &self.layout_config,
            &self.lod_config,
        )?;
        self.timings.scene_seconds = Some(started.elapsed().as_secs_f64());
        self.scene = Some(scene);
        Ok(())
    }

    fn ensure_svg(&mut self) -> TerrainResult<()> {
        self.ensure_mesh()?;
        if self.svg.is_some() {
            return Ok(());
        }
        self.svg_size.validate()?;
        let started = Instant::now();
        // The session's cached SVG is produced by the same streaming backend
        // `render_to` exposes, so the two paths are byte-identical by
        // construction.
        let scene = RenderScene::new(
            self.render_tree_ref(),
            self.layout.as_ref().expect("ensured"),
            self.mesh.as_ref().expect("ensured"),
        );
        let svg =
            Svg::new(self.svg_size.width_px, self.svg_size.height_px).export_string(&scene)?;
        self.timings.svg_seconds = Some(started.elapsed().as_secs_f64());
        self.svg = Some(svg);
        Ok(())
    }
}

/// Exact incremental update of a computed measure scalar across a delta.
/// Every Local / DirtyRegion measure is an integer count (degree, triangle
/// count, core / truss number) stored as `f64`, so the `usize` round-trip
/// is lossless and the result matches a from-scratch recompute bit for bit.
fn incremental_measure_scalar(
    measure: &Measure,
    compacted: &CompactedDelta,
    old_scalar: &[f64],
    parallelism: Parallelism,
) -> Vec<f64> {
    let graph = &compacted.graph;
    let old_counts: Vec<usize> = old_scalar.iter().map(|&x| x as usize).collect();
    match measure {
        Measure::Degree => measures::incremental_degrees(graph, &old_counts, &compacted.dirty)
            .into_iter()
            .map(|d| d as f64)
            .collect(),
        Measure::EdgeTriangles => {
            measures::incremental_edge_triangle_counts(graph, &old_counts, compacted, parallelism)
                .into_iter()
                .map(|t| t as f64)
                .collect()
        }
        Measure::KCore => {
            let degeneracy = old_counts.iter().copied().max().unwrap_or(0);
            let old = KCoreDecomposition { core: old_counts, degeneracy };
            measures::incremental_core_numbers(graph, &old, &compacted.dirty)
                .core
                .into_iter()
                .map(|c| c as f64)
                .collect()
        }
        Measure::KTruss => {
            let max_truss = old_counts.iter().copied().max().unwrap_or(0);
            let old = KTrussDecomposition { truss: old_counts, max_truss };
            measures::incremental_truss_numbers(graph, &old, compacted, parallelism)
                .truss
                .into_iter()
                .map(|t| t as f64)
                .collect()
        }
        Measure::PageRank | Measure::Closeness | Measure::BetweennessSampled { .. } => {
            unreachable!("Full-cost measures recompute from scratch, not incrementally")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::GraphBuilder;

    fn toy_graph() -> CsrGraph {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0u32, 1u32), (1, 2), (2, 0), (2, 3), (3, 4)]);
        b.build()
    }

    #[test]
    fn vertex_session_runs_every_stage_and_records_timings() {
        let graph = toy_graph();
        let mut session = TerrainPipeline::from_measure(&graph, Measure::KCore);
        assert_eq!(session.field_kind(), FieldKind::Vertex);
        let svg = session.build().unwrap();
        assert!(svg.starts_with("<svg"));
        let t = session.timings();
        assert!(t.scalar_seconds.is_some());
        assert!(t.tree_construction_seconds().unwrap() >= 0.0);
        assert!(t.visualization_seconds().unwrap() >= 0.0);
        assert_eq!(session.super_tree().unwrap().total_members(), graph.vertex_count());
    }

    #[test]
    fn edge_session_unifies_the_edge_path() {
        let graph = toy_graph();
        let mut session = TerrainPipeline::from_measure(&graph, Measure::KTruss);
        assert_eq!(session.field_kind(), FieldKind::Edge);
        assert_eq!(session.super_tree().unwrap().total_members(), graph.edge_count());
        assert!(session.svg().unwrap().starts_with("<svg"));
        // User-provided scalars go through the same core.
        let scalar: Vec<f64> = (0..graph.edge_count()).map(|e| e as f64).collect();
        let mut explicit = TerrainPipeline::edge(&graph, scalar).unwrap();
        assert!(explicit.timings().scalar_seconds.is_none(), "user scalar is not timed");
        assert!(explicit.mesh().unwrap().triangle_count() > 0);
    }

    #[test]
    fn invalid_scalars_fail_at_the_session_boundary() {
        let graph = toy_graph();
        assert!(TerrainPipeline::vertex(&graph, vec![1.0]).is_err());
        assert!(TerrainPipeline::vertex(&graph, vec![f64::NAN; 5]).is_err());
        assert!(TerrainPipeline::edge(&graph, vec![1.0; 3]).is_err());
        let mut ok = TerrainPipeline::vertex(&graph, vec![1.0; 5]).unwrap();
        assert!(ok.set_scalar(vec![2.0; 4]).is_err(), "length mismatch on set_scalar");
        // The failed set leaves the session usable with its old field.
        assert!(ok.svg().unwrap().starts_with("<svg"));
    }

    #[test]
    fn invalid_configs_surface_as_errors_not_panics() {
        let graph = toy_graph();
        let mut session = TerrainPipeline::from_measure(&graph, Measure::Degree);
        session.set_layout(LayoutConfig { width: -1.0, ..Default::default() });
        assert!(matches!(session.svg(), Err(TerrainError::Layout { .. })));
        session.set_layout(LayoutConfig::default());
        session.set_simplification(SimplificationConfig { node_budget: Some(0), levels: 0 });
        assert!(matches!(session.svg(), Err(TerrainError::Graph(_))));
        session.set_simplification(SimplificationConfig::default());
        session.set_svg_size(SvgSize::new(0.0, 100.0));
        assert!(matches!(session.svg(), Err(TerrainError::Config { .. })));
        session.set_svg_size(SvgSize::default());
        assert!(session.svg().unwrap().starts_with("<svg"));
    }

    #[test]
    fn set_color_reuses_tree_and_layout() {
        let graph = toy_graph();
        let mut session = TerrainPipeline::from_measure(&graph, Measure::KCore);
        session.svg().unwrap();
        let tree_time = session.timings().tree_seconds;
        let layout_time = session.timings().layout_seconds;
        let triangles = session.mesh().unwrap().triangle_count();
        let degrees: Vec<f64> = measures::degrees(&graph).iter().map(|&d| d as f64).collect();
        session.set_color(ColorScheme::BySecondaryScalar(degrees));
        assert!(session.timings().mesh_seconds.is_none(), "mesh invalidated");
        session.svg().unwrap();
        // Cached stages kept the exact timing values of their original run —
        // they were not recomputed.
        assert_eq!(session.timings().tree_seconds, tree_time);
        assert_eq!(session.timings().layout_seconds, layout_time);
        assert_eq!(session.mesh().unwrap().triangle_count(), triangles);
    }

    #[test]
    fn from_source_matches_a_borrowed_session_bit_for_bit() {
        // The same graph, once ingested through a GraphSource (edge-list
        // text) and once borrowed directly: identical SVG bytes.
        let text = "0 1\n1 2\n2 0\n2 3\n3 4\n";
        let mut ingested =
            TerrainPipeline::from_source(GraphSource::reader(text.as_bytes()), Measure::KCore)
                .unwrap();
        let graph = toy_graph();
        let mut borrowed = TerrainPipeline::from_measure(&graph, Measure::KCore);
        assert_eq!(ingested.graph().vertex_count(), graph.vertex_count());
        assert_eq!(ingested.svg().unwrap(), borrowed.svg().unwrap());
    }

    #[test]
    fn from_shared_sessions_share_one_graph_and_match_borrowed_output() {
        let graph = toy_graph();
        let shared = SharedGraph::new(graph.clone());
        let mut borrowed = TerrainPipeline::from_measure(&graph, Measure::KCore);
        let expected = borrowed.svg().unwrap().to_string();
        // Two sessions cloned off the same SharedGraph: identical bytes, one
        // underlying graph allocation.
        let mut a = TerrainPipeline::from_shared(shared.clone(), Measure::KCore);
        let mut b = TerrainPipeline::from_shared(shared.clone(), Measure::KCore);
        assert_eq!(a.svg().unwrap(), expected);
        assert_eq!(b.svg().unwrap(), expected);
        assert_eq!(shared.backend_name(), "owned");
        assert!(!shared.is_memory_mapped());
        // The mapped backend through snapshot bytes: same artifact.
        let bytes = ugraph::io::encode_binary_v3(&graph, None).unwrap();
        let mapped = SharedGraph::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(mapped.backend_name(), "mapped");
        let mut c = TerrainPipeline::from_shared(mapped, Measure::KCore);
        assert_eq!(c.svg().unwrap(), expected);
    }

    #[test]
    fn measures_table_is_the_single_source_of_measure_metadata() {
        assert_eq!(Measure::known_names().len(), MEASURES.len());
        for info in MEASURES {
            let measure = Measure::from_name(info.name).unwrap();
            assert_eq!(measure.delta_cost(), info.delta_cost, "{}", info.name);
        }
    }

    #[test]
    fn apply_delta_matches_a_fresh_session_for_every_measure_tier() {
        use ugraph::delta::{DeltaOp, DeltaOverlay, GraphDelta};
        let graph = ugraph::generators::barabasi_albert(120, 3, 5);
        let e0 = graph.edges().next().unwrap();
        let grown = graph.vertex_count() as u32;
        let mut delta = GraphDelta::new();
        delta.push(DeltaOp::Delete, e0.u, e0.v);
        delta.push(DeltaOp::Insert, 0u32, grown); // grows the vertex set
        delta.push(DeltaOp::Insert, grown, grown + 1);
        // The oracle graph, via the delta crate's compaction (itself proven
        // equal to a from-scratch build in its own tests).
        let mut oracle = DeltaOverlay::new(&graph);
        oracle.apply(&delta);
        let final_graph = oracle.compact().graph;

        for measure in [
            Measure::Degree,
            Measure::EdgeTriangles,
            Measure::KCore,
            Measure::KTruss,
            Measure::PageRank,
        ] {
            let mut session = TerrainPipeline::from_measure(&graph, measure.clone());
            session.svg().unwrap(); // warm every stage cache
            let report = session.apply_delta(&delta).unwrap();
            assert!(report.structural);
            assert_eq!(report.vertex_count, final_graph.vertex_count());
            assert_eq!(report.edge_count, final_graph.edge_count());
            assert_eq!(report.measure, Some(measure.name()));
            assert_eq!(report.delta_cost, Some(measure.delta_cost()));
            let expected_path = match measure.delta_cost() {
                DeltaCost::Local | DeltaCost::DirtyRegion => "incremental",
                DeltaCost::Full => "recompute",
            };
            assert_eq!(report.scalar_path, expected_path, "{}", measure.name());
            if report.scalar_path == "incremental" {
                assert!(session.timings().scalar_seconds.is_some(), "incremental update is timed");
            }
            let mut fresh = TerrainPipeline::from_measure(&final_graph, measure.clone());
            assert_eq!(session.svg().unwrap(), fresh.svg().unwrap(), "{}", measure.name());
        }
    }

    #[test]
    fn no_op_deltas_invalidate_nothing() {
        use ugraph::delta::{DeltaOp, GraphDelta};
        let graph = toy_graph();
        let mut session = TerrainPipeline::from_measure(&graph, Measure::KCore);
        let svg = session.build().unwrap();
        let tree_time = session.timings().tree_seconds;
        let mut delta = GraphDelta::new();
        delta.push(DeltaOp::Insert, 0u32, 1u32); // already present
        delta.push(DeltaOp::Delete, 0u32, 3u32); // absent
        delta.push(DeltaOp::Reweight, 1u32, 2u32);
        let report = session.apply_delta(&delta).unwrap();
        assert!(!report.structural);
        assert_eq!(report.scalar_path, "unchanged");
        assert_eq!(report.stats.redundant_inserts, 1);
        assert_eq!(report.stats.absent_deletes, 1);
        assert_eq!(report.stats.reweights, 1);
        assert_eq!(report.dirty_vertex_count, 0);
        // Every cache survived: identical timings, identical bytes.
        assert_eq!(session.timings().tree_seconds, tree_time);
        assert!(session.timings().svg_seconds.is_some(), "SVG cache kept");
        assert_eq!(session.build().unwrap(), svg);
    }

    #[test]
    fn explicit_scalars_cross_deltas_or_fail_safely() {
        use ugraph::delta::{DeltaOp, GraphDelta};
        let graph = toy_graph();
        // Vertex scalar: kept verbatim while the vertex set is stable.
        let scalar = vec![5.0, 4.0, 3.0, 2.0, 1.0];
        let mut session = TerrainPipeline::vertex(&graph, scalar.clone()).unwrap();
        let mut shrink = GraphDelta::new();
        shrink.push(DeltaOp::Delete, 0u32, 1u32);
        let report = session.apply_delta(&shrink).unwrap();
        assert_eq!(report.scalar_path, "kept");
        assert_eq!(session.scalar().unwrap(), &scalar[..]);
        // Growing the vertex set has no scalar values for the new vertices:
        // rejected, and the session stays usable on its current graph.
        let mut grow = GraphDelta::new();
        grow.push(DeltaOp::Insert, 0u32, 9u32);
        assert!(matches!(session.apply_delta(&grow), Err(TerrainError::Config { .. })));
        assert_eq!(session.graph().vertex_count(), 5);
        assert!(session.svg().unwrap().starts_with("<svg"));

        // Edge scalar: deletions remap the surviving values by edge id.
        let edge_scalar: Vec<f64> = (0..graph.edge_count()).map(|e| 10.0 + e as f64).collect();
        let mut edges = TerrainPipeline::edge(&graph, edge_scalar.clone()).unwrap();
        let e0 = graph.edges().next().unwrap();
        let mut del = GraphDelta::new();
        del.push(DeltaOp::Delete, e0.u, e0.v);
        let report = edges.apply_delta(&del).unwrap();
        assert_eq!(report.scalar_path, "remapped");
        let remapped = edges.scalar().unwrap().to_vec();
        assert_eq!(remapped.len(), graph.edge_count() - 1);
        assert!(!remapped.contains(&edge_scalar[e0.id.index()]), "deleted edge's value is gone");
        // Insertions have no value to remap from: rejected up front.
        let mut ins = GraphDelta::new();
        ins.push(DeltaOp::Insert, 0u32, 4u32);
        assert!(matches!(edges.apply_delta(&ins), Err(TerrainError::Config { .. })));
        assert!(edges.svg().unwrap().starts_with("<svg"));
    }

    #[test]
    fn shared_graph_apply_delta_is_copy_on_write() {
        use ugraph::delta::{DeltaOp, GraphDelta};
        let graph = toy_graph();
        let bytes = ugraph::io::encode_binary_v3(&graph, None).unwrap();
        let mut shared = SharedGraph::from_snapshot_bytes(&bytes).unwrap();
        // A batch of pure no-ops leaves the mapped backend mapped.
        let mut noop = GraphDelta::new();
        noop.push(DeltaOp::Insert, 0u32, 1u32);
        let stats = shared.apply_delta(&noop);
        assert_eq!(stats.redundant_inserts, 1);
        assert_eq!(shared.backend_name(), "mapped");
        // A structural change swaps in a fresh owned graph; clones taken
        // before the swap keep reading the old one.
        let before = shared.clone();
        let mut del = GraphDelta::new();
        del.push(DeltaOp::Delete, 0u32, 1u32);
        let stats = shared.apply_delta(&del);
        assert_eq!(stats.deleted, 1);
        assert_eq!(shared.backend_name(), "owned");
        assert_eq!(shared.storage().edge_count(), graph.edge_count() - 1);
        assert_eq!(before.storage().edge_count(), graph.edge_count());
    }

    #[test]
    fn measure_names_round_trip_through_from_name() {
        for name in Measure::known_names() {
            let measure = Measure::from_name(name).unwrap();
            // The parsed measure's display name maps back to itself.
            assert_eq!(Measure::from_name(measure.name().split('(').next().unwrap()), {
                Some(measure)
            });
        }
        assert_eq!(Measure::from_name("K-Core"), Some(Measure::KCore));
        assert_eq!(
            Measure::from_name("betweenness"),
            Some(Measure::BetweennessSampled { samples: 64, seed: 20170419 })
        );
        assert_eq!(Measure::from_name("voronoi"), None);
    }

    #[test]
    fn render_to_svg_matches_the_cached_svg_stage() {
        let graph = toy_graph();
        let mut session = TerrainPipeline::from_measure(&graph, Measure::KCore);
        let svg = session.build().unwrap();
        let mut streamed = Vec::new();
        session.render_to(&Svg::new(900.0, 700.0), &mut streamed).unwrap();
        assert_eq!(String::from_utf8(streamed).unwrap(), svg);
        // The scene handed to backends carries the session's timings.
        let mut json = Vec::new();
        session.render_to(&terrain::JsonScene, &mut json).unwrap();
        let json = String::from_utf8(json).unwrap();
        assert!(json.contains("\"stage\": \"tree\""), "{json}");
        assert!(json.contains("\"stage\": \"svg\""), "{json}");
    }

    #[test]
    fn deterministic_render_is_reproducible_across_fresh_sessions() {
        let graph = toy_graph();
        let render = || {
            let mut session = TerrainPipeline::from_measure(&graph, Measure::KCore);
            let mut bytes = Vec::new();
            session.render_deterministic_to(&terrain::JsonScene, &mut bytes).unwrap();
            bytes
        };
        // `json` serializes scene timings when present; the deterministic
        // variant must strip them so independent runs agree byte-for-byte.
        let first = render();
        assert_eq!(first, render());
        assert!(String::from_utf8(first).unwrap().contains("\"timings\": []"));
    }

    #[test]
    fn write_artifact_streams_through_any_backend() {
        let graph = toy_graph();
        let mut session = TerrainPipeline::from_measure(&graph, Measure::KCore);
        let dir = std::env::temp_dir();
        for exporter in terrain::builtin_exporters() {
            let path = dir.join(format!(
                "graph_terrain_artifact_test_{}.{}",
                exporter.name(),
                exporter.file_extension()
            ));
            session.write_artifact(exporter.as_ref(), &path).unwrap();
            let written = std::fs::read(&path).unwrap();
            assert!(!written.is_empty(), "{} artifact is empty", exporter.name());
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn simplification_budget_kicks_in_and_reuses_the_super_tree() {
        let graph = ugraph::generators::barabasi_albert(600, 3, 5);
        let mut session = TerrainPipeline::from_measure(&graph, Measure::Degree);
        session.set_simplification(SimplificationConfig { node_budget: Some(10), levels: 4 });
        let full_nodes = session.super_tree().unwrap().node_count();
        let render_nodes = session.render_tree().unwrap().node_count();
        assert!(full_nodes > 10, "degree field on a BA graph yields a rich tree");
        assert!(render_nodes < full_nodes, "budget must trigger simplification");
        let super_time = session.timings().super_tree_seconds;
        session.set_simplification(SimplificationConfig::disabled());
        assert_eq!(session.render_tree().unwrap().node_count(), full_nodes);
        assert_eq!(session.timings().super_tree_seconds, super_time, "super tree reused");
    }

    #[test]
    fn scene_stage_survives_simplification_but_not_tree_or_layout_changes() {
        use ugraph::delta::{DeltaOp, GraphDelta};
        let graph = ugraph::generators::barabasi_albert(600, 3, 5);
        let mut session = TerrainPipeline::from_measure(&graph, Measure::Degree);
        let item_count = session.scene().unwrap().item_count();
        assert!(item_count > 0);
        let scene_time = session.timings().scene_seconds;
        assert!(scene_time.is_some());

        // Simplification and mesh/SVG knobs never touch the scene: it is
        // built from the unsimplified super tree, so tiles ignore budgets.
        session.set_simplification(SimplificationConfig { node_budget: Some(10), levels: 4 });
        session.set_color(ColorScheme::ByHeight);
        session.set_svg_size(SvgSize { width_px: 77.0, height_px: 55.0 });
        assert_eq!(session.timings().scene_seconds, scene_time, "scene cache kept");
        assert_eq!(session.scene().unwrap().item_count(), item_count);

        // A layout change moves every rectangle, so the scene rebuilds.
        session.set_layout(LayoutConfig { width: 2.0, ..Default::default() });
        assert!(session.timings().scene_seconds.is_none(), "layout change drops the scene");
        assert!(session.scene().unwrap().item_count() > 0);

        // An invalid LOD config is rejected up front; a valid one rebuilds
        // only the scene.
        assert!(session.set_lod(LodConfig { tile_px: 0, ..Default::default() }).is_err());
        let layout_time = session.timings().layout_seconds;
        session.set_lod(LodConfig { max_lod: 4, ..Default::default() }).unwrap();
        assert!(session.timings().scene_seconds.is_none());
        assert_eq!(session.scene().unwrap().max_zoom(), 4);
        assert_eq!(session.timings().layout_seconds, layout_time, "layout untouched");

        // A structural delta rebuilds the tree, hence the scene.
        let mut delta = GraphDelta::new();
        delta.push(DeltaOp::Insert, 0u32, 600u32); // a brand-new vertex
        let report = session.apply_delta(&delta).unwrap();
        assert!(report.structural);
        assert!(session.timings().scene_seconds.is_none(), "delta drops the scene");
        assert!(session.scene().unwrap().item_count() > 0);

        // The stage timing list exposes the scene stage once it has run.
        let timings = session.scene_timings();
        assert!(timings.iter().any(|t| t.stage == "scene"));
    }
}
