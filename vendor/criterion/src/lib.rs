//! Vendored stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use — benchmark groups,
//! `bench_function` / `bench_with_input`, throughput annotation, the
//! `criterion_group!` / `criterion_main!` macros — over a simple wall-clock
//! measurement loop. There is no statistical analysis or HTML report; each
//! benchmark prints its mean time per iteration. `cargo bench --no-run`
//! compiles everything; a full `cargo bench` completes in seconds because the
//! sample counts are small.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark id with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// A benchmark id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { id: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    mean: Duration,
}

impl Bencher {
    /// Measure `routine`, running it `samples` times after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, also keeps the result observable
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        let total = start.elapsed();
        self.mean = total / self.samples as u32;
    }
}

/// Top-level benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of measured iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(name, sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the measured iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Record the per-iteration throughput (informational).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Benchmark a routine that receives a shared input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmark a routine with no external input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, f);
        self
    }

    /// Finish the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher { samples, mean: Duration::ZERO };
    f(&mut bencher);
    println!("bench: {name:<60} {:>12.3?} /iter ({samples} samples)", bencher.mean);
}

/// Define a benchmark group function, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags such as `--bench`; a plain
            // `--help`/`--list` probe should not run the full suite.
            let args: Vec<String> = std::env::args().skip(1).collect();
            if args.iter().any(|a| a == "--list") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn groups_run_their_benchmarks() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(5));
            g.bench_function("one", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("two", 7), &7, |b, &x| b.iter(|| x * 2));
            g.finish();
        }
        // one warm-up + three samples
        assert_eq!(ran, 4);
    }
}
