//! Vendored stand-in for the `proptest` crate.
//!
//! Reproduces the subset of proptest the workspace's property tests use:
//! range and tuple strategies, [`collection::vec`], [`Just`],
//! `prop_map` / `prop_flat_map`, [`ProptestConfig`] and the [`proptest!`]
//! macro. Test inputs are generated from a ChaCha8 stream seeded by a hash of
//! the test name, so every run of a given test explores the same cases —
//! failures are always reproducible. There is no shrinking: a failing case
//! panics with the values bound by the test's patterns visible in the assert
//! message.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use core::ops::{Range, RangeInclusive};
use rand::Rng;

pub mod test_runner {
    //! The deterministic RNG driving case generation.

    use rand::{RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Deterministic random source for one property test.
    #[derive(Clone, Debug)]
    pub struct TestRng(ChaCha8Rng);

    impl TestRng {
        /// Create a generator whose stream depends only on `name`.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name gives a stable per-test seed.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.as_bytes() {
                hash ^= u64::from(*byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(ChaCha8Rng::seed_from_u64(hash))
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest)
        }
    }
}

use test_runner::TestRng;

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy yielding a fixed (cloned) value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
);

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, TestRng};
    use core::ops::Range;
    use rand::Rng;

    /// A length specification for [`vec()`]: a fixed size or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange { min: len, max_exclusive: len + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            SizeRange { min: range.start, max_exclusive: range.end }
        }
    }

    /// Strategy producing vectors of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        assert!(size.min < size.max_exclusive, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports for property tests, mirroring `proptest::prelude`.

    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Assert a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests: each `fn` runs its body against `cases` random
/// inputs drawn from the strategies to the right of each `in`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for _case in 0..config.cases {
                    $(
                        let $pat = $crate::Strategy::generate(&($strategy), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strategy),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("unit");
        for _ in 0..100 {
            let n = (2usize..40).generate(&mut rng);
            assert!((2..40).contains(&n));
            let v = crate::collection::vec(0..n as u32, 0..(4 * n)).generate(&mut rng);
            assert!(v.len() < 4 * n);
            assert!(v.iter().all(|&x| x < n as u32));
        }
    }

    #[test]
    fn flat_map_threads_values() {
        let strategy =
            (2usize..10).prop_flat_map(|n| (Just(n), crate::collection::vec(0..n as u32, n)));
        let mut rng = crate::test_runner::TestRng::deterministic("flat");
        for _ in 0..50 {
            let (n, v) = strategy.generate(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| (x as usize) < n));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("same");
        let mut b = crate::test_runner::TestRng::deterministic("same");
        let s = 0u64..1000;
        for _ in 0..20 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_smoke((n, xs) in (1usize..8).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0u8..10, n))
        }), extra in 0u64..5) {
            prop_assert_eq!(xs.len(), n);
            prop_assert!(extra < 5);
            prop_assert_ne!(n, 0);
        }
    }
}
