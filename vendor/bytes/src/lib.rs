//! Vendored stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`] / [`BufMut`] trait subset
//! used by `ugraph::io`'s binary graph encoding. Backed by plain `Vec<u8>`
//! storage — no refcounted zero-copy splitting, which the workspace does not
//! need.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes remaining between the cursor and the end.
    fn remaining(&self) -> usize;

    /// Advance the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Borrow the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Read a little-endian `u32` and advance.
    fn get_u32_le(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "buffer underflow");
        let bytes: [u8; 4] = self.chunk()[..4].try_into().expect("4 bytes");
        self.advance(4);
        u32::from_le_bytes(bytes)
    }

    /// Read a single byte and advance.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "buffer underflow");
        let byte = self.chunk()[0];
        self.advance(1);
        byte
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, value: u32) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Append a single byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Create a buffer over a static byte slice (copied).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes { data: data.to_vec(), pos: 0 }
    }

    /// Total length of the unread portion.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.pos += cnt;
    }
    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Create an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_round_trip() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u32_le(42);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.remaining(), 8);
        assert_eq!(bytes.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u32_le(), 42);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn from_static_reads_back() {
        let mut b = Bytes::from_static(&[1, 0, 0, 0, 7]);
        assert_eq!(b.get_u32_le(), 1);
        assert_eq!(b.get_u8(), 7);
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from_static(&[1, 2]);
        b.get_u32_le();
    }
}
