//! Vendored stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: the [`RngCore`] /
//! [`SeedableRng`] / [`Rng`] traits, uniform range sampling for integers and
//! floats, Bernoulli draws, and Fisher–Yates shuffling via
//! [`seq::SliceRandom`]. Sampling is *deterministic given the generator
//! state*, which is all the workspace requires (every caller seeds its PRNG
//! explicitly); the streams are not bit-compatible with upstream `rand`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use core::ops::{Range, RangeInclusive};

/// A source of random bits.
pub trait RngCore {
    /// Return the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be created from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The byte-array seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Create a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Create a generator from a `u64`, expanding it with SplitMix64 so that
    /// nearby seeds yield unrelated states.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from the generator's native output
/// (the `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // All arithmetic is mod 2^128, so the two's-complement span is
                // correct for signed types as well.
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let offset = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                let offset = (rng.next_u64() as u128) % span;
                (start as u128).wrapping_add(offset) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` (matching upstream `rand` 0.8).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        let unit: f64 = Standard::sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Return a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&word[..n]);
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(5..17);
            assert!((5..17).contains(&v));
            let w: usize = rng.gen_range(0..=3);
            assert!(w <= 3);
            let f: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!(f > 0.0 && f < 1.0);
            let s: i32 = rng.gen_range(-10..10);
            assert!((-10..10).contains(&s));
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = Counter(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
