//! Vendored stand-in for the `serde` crate.
//!
//! The workspace only uses `serde::Serialize` as a bound on
//! `bench::output::write_json`, so this stub reduces serialization to one
//! JSON-oriented method. Implementations cover primitives, strings, slices,
//! vectors, options, tuples and string-keyed maps; no derive macros are
//! provided (nothing in the workspace derives).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::{BTreeMap, HashMap};

/// A value that can be written as JSON.
pub trait Serialize {
    /// Append this value's JSON representation to `out`.
    ///
    /// `indent` is the current pretty-printing depth (two spaces per level);
    /// scalar types ignore it.
    fn json_write(&self, out: &mut String, indent: usize);
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn json_write(&self, out: &mut String, indent: usize) {
        (**self).json_write(out, indent)
    }
}

macro_rules! impl_serialize_display {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn json_write(&self, out: &mut String, _indent: usize) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}
impl_serialize_display!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

macro_rules! impl_serialize_float {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn json_write(&self, out: &mut String, _indent: usize) {
                if self.is_finite() {
                    out.push_str(&self.to_string());
                } else {
                    // JSON has no NaN/Inf; serde_json emits null.
                    out.push_str("null");
                }
            }
        }
    )*};
}
impl_serialize_float!(f32, f64);

/// Escape and quote a string per JSON rules.
fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Serialize for str {
    fn json_write(&self, out: &mut String, _indent: usize) {
        write_escaped(self, out);
    }
}

impl Serialize for String {
    fn json_write(&self, out: &mut String, _indent: usize) {
        write_escaped(self, out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn json_write(&self, out: &mut String, indent: usize) {
        match self {
            Some(v) => v.json_write(out, indent),
            None => out.push_str("null"),
        }
    }
}

fn write_seq<'a, T: Serialize + 'a>(
    items: impl ExactSizeIterator<Item = &'a T>,
    out: &mut String,
    indent: usize,
) {
    if items.len() == 0 {
        out.push_str("[]");
        return;
    }
    out.push('[');
    let inner = indent + 1;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&"  ".repeat(inner));
        item.json_write(out, inner);
    }
    out.push('\n');
    out.push_str(&"  ".repeat(indent));
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn json_write(&self, out: &mut String, indent: usize) {
        write_seq(self.iter(), out, indent);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn json_write(&self, out: &mut String, indent: usize) {
        write_seq(self.iter(), out, indent);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn json_write(&self, out: &mut String, indent: usize) {
        write_seq(self.iter(), out, indent);
    }
}

fn write_map<'a, T: Serialize + 'a>(
    entries: impl ExactSizeIterator<Item = (&'a String, &'a T)>,
    out: &mut String,
    indent: usize,
) {
    if entries.len() == 0 {
        out.push_str("{}");
        return;
    }
    out.push('{');
    let inner = indent + 1;
    for (i, (key, value)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&"  ".repeat(inner));
        write_escaped(key, out);
        out.push_str(": ");
        value.json_write(out, inner);
    }
    out.push('\n');
    out.push_str(&"  ".repeat(indent));
    out.push('}');
}

impl<T: Serialize> Serialize for BTreeMap<String, T> {
    fn json_write(&self, out: &mut String, indent: usize) {
        write_map(self.iter(), out, indent);
    }
}

impl<T: Serialize> Serialize for HashMap<String, T> {
    fn json_write(&self, out: &mut String, indent: usize) {
        // Deterministic output: sort keys.
        let mut entries: Vec<_> = self.iter().collect();
        entries.sort_by_key(|(k, _)| k.as_str());
        write_map(entries.into_iter(), out, indent);
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn json_write(&self, out: &mut String, indent: usize) {
                out.push('[');
                let mut first = true;
                $(
                    if !first {
                        out.push_str(", ");
                    }
                    first = false;
                    self.$idx.json_write(out, indent);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )*};
}
impl_serialize_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

#[cfg(test)]
mod tests {
    use super::*;

    fn to_json<T: Serialize>(v: &T) -> String {
        let mut out = String::new();
        v.json_write(&mut out, 0);
        out
    }

    #[test]
    fn scalars() {
        assert_eq!(to_json(&1u32), "1");
        assert_eq!(to_json(&-3i64), "-3");
        assert_eq!(to_json(&true), "true");
        assert_eq!(to_json(&1.5f64), "1.5");
        assert_eq!(to_json(&f64::NAN), "null");
        assert_eq!(to_json(&"a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn containers() {
        assert_eq!(to_json(&Vec::<u32>::new()), "[]");
        assert_eq!(to_json(&vec![1, 2]), "[\n  1,\n  2\n]");
        assert_eq!(to_json(&Some(5u8)), "5");
        assert_eq!(to_json(&None::<u8>), "null");
        assert_eq!(to_json(&(1u8, "x".to_string())), "[1, \"x\"]");
    }

    #[test]
    fn maps_are_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u8);
        m.insert("a".to_string(), 1u8);
        assert_eq!(to_json(&m), "{\n  \"a\": 1,\n  \"b\": 2\n}");
    }
}
