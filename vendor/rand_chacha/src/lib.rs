//! Vendored stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha stream cipher core (8 rounds) as a PRNG so the
//! workspace's deterministic generators get a high-quality, seedable stream
//! without a crates.io download. The stream is deterministic given the seed
//! but is not guaranteed bit-compatible with upstream `rand_chacha` (the
//! workspace only relies on self-consistency).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha PRNG with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&CONSTANTS);
        input[4..12].copy_from_slice(&self.key);
        input[12] = self.counter as u32;
        input[13] = (self.counter >> 32) as u32;
        // input[14..16] is the (zero) nonce.
        let mut working = input;
        for _ in 0..4 {
            // Two ChaCha rounds per iteration: column then diagonal.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, i)) in self.buffer.iter_mut().zip(working.iter().zip(input.iter())) {
            *out = w.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng { key, counter: 0, buffer: [0; 16], index: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(12345);
        let mut b = ChaCha8Rng::seed_from_u64(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should be unrelated, {same} of 64 words matched");
    }

    #[test]
    fn output_looks_balanced() {
        // Crude sanity check: bit frequency of the keystream is near 1/2.
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let ones: u32 = (0..1024).map(|_| rng.next_u32().count_ones()).sum();
        let total = 1024 * 32;
        let fraction = ones as f64 / total as f64;
        assert!((0.48..0.52).contains(&fraction), "bit fraction {fraction}");
    }

    #[test]
    fn fill_bytes_handles_odd_lengths() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        let mut rng2 = ChaCha8Rng::seed_from_u64(5);
        let mut buf2 = [0u8; 7];
        rng2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }
}
