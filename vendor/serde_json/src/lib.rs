//! Vendored stand-in for the `serde_json` crate: pretty-printing for values
//! implementing the vendored [`serde::Serialize`] trait, plus a small
//! recursive-descent parser into a dynamic [`Value`] (used by the bench
//! harness to compare `BENCH_*.json` baselines).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::BTreeMap;
use std::fmt;

/// Serialization or parse error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn parse(offset: usize, message: impl Into<String>) -> Self {
        Error(format!("json parse error at byte {offset}: {}", message.into()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            f.write_str("json serialization error")
        } else {
            f.write_str(&self.0)
        }
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a pretty-printed (two-space indented) JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.json_write(&mut out, 0);
    Ok(out)
}

/// Serialize `value` as a compact-ish JSON string (same output as
/// [`to_string_pretty`] in this stub).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string_pretty(value)
}

/// A dynamically typed JSON value, as produced by [`from_str`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like `serde_json`'s arbitrary
    /// precision mode disabled).
    Number(f64),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object. `BTreeMap` keeps iteration deterministic.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member `key` of an object, or `None` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as an `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object map if it is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Parse a JSON document into a [`Value`].
///
/// Supports the full JSON grammar (RFC 8259): all escape sequences including
/// `\uXXXX` with surrogate pairs, exponent-form numbers, and arbitrarily
/// nested containers. Trailing non-whitespace after the document is an error.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::parse(parser.pos, "trailing characters after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(self.pos, format!("expected '{}'", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::parse(self.pos, format!("unexpected character '{}'", c as char))),
            None => Err(Error::parse(self.pos, "unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(Error::parse(self.pos, format!("expected '{literal}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::parse(start, format!("invalid number '{text}'")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut result = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::parse(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(result);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => result.push('"'),
                        Some(b'\\') => result.push('\\'),
                        Some(b'/') => result.push('/'),
                        Some(b'b') => result.push('\u{8}'),
                        Some(b'f') => result.push('\u{c}'),
                        Some(b'n') => result.push('\n'),
                        Some(b'r') => result.push('\r'),
                        Some(b't') => result.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.parse_hex4()?;
                            // Combine UTF-16 surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::parse(self.pos, "invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            match c {
                                Some(c) => result.push(c),
                                None => {
                                    return Err(Error::parse(self.pos, "invalid unicode escape"))
                                }
                            }
                            continue; // parse_hex4 already advanced past the digits
                        }
                        _ => return Err(Error::parse(self.pos, "invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded character (1–4 bytes).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::parse(self.pos, "invalid utf-8"))?;
                    let c = rest.chars().next().expect("peek returned Some");
                    result.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::parse(self.pos, "truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::parse(self.pos, "invalid unicode escape"))?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| Error::parse(self.pos, "invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse(self.pos, "expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::parse(self.pos, "expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_vectors() {
        let json = super::to_string_pretty(&vec![1u32, 2, 3]).unwrap();
        assert_eq!(json, "[\n  1,\n  2,\n  3\n]");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str("-12.5e2").unwrap(), Value::Number(-1250.0));
        assert_eq!(from_str("\"a\\nb\"").unwrap(), Value::String("a\nb".into()));
    }

    #[test]
    fn parses_nested_containers() {
        let v = from_str(r#"{"rungs": [{"edges": 1000, "name": "1k"}], "ok": true}"#).unwrap();
        let rungs = v.get("rungs").unwrap().as_array().unwrap();
        assert_eq!(rungs[0].get("edges").unwrap().as_u64(), Some(1000));
        assert_eq!(rungs[0].get("name").unwrap().as_str(), Some("1k"));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(from_str(r#""é""#).unwrap(), Value::String("é".into()));
        // Surrogate pair: 😀
        assert_eq!(from_str(r#""😀""#).unwrap(), Value::String("😀".into()));
    }

    #[test]
    fn round_trips_serializer_output() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("threads".to_string(), 4.0f64);
        m.insert("seconds".to_string(), 0.25);
        let json = super::to_string_pretty(&m).unwrap();
        let v = from_str(&json).unwrap();
        assert_eq!(v.get("threads").unwrap().as_f64(), Some(4.0));
        assert_eq!(v.get("seconds").unwrap().as_f64(), Some(0.25));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("\"unterminated").is_err());
        assert!(from_str("nul").is_err());
    }
}
