//! Vendored stand-in for the `serde_json` crate: just enough to pretty-print
//! values implementing the vendored [`serde::Serialize`] trait.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;

/// Serialization error. The vendored serializer is infallible, so this type
/// exists only to keep `serde_json`'s `Result`-returning signatures.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("json serialization error")
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a pretty-printed (two-space indented) JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.json_write(&mut out, 0);
    Ok(out)
}

/// Serialize `value` as a compact-ish JSON string (same output as
/// [`to_string_pretty`] in this stub).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string_pretty(value)
}

#[cfg(test)]
mod tests {
    #[test]
    fn pretty_prints_vectors() {
        let json = super::to_string_pretty(&vec![1u32, 2, 3]).unwrap();
        assert_eq!(json, "[\n  1,\n  2,\n  3\n]");
    }
}
